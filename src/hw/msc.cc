#include "hw/msc.hh"

#include <cstring>
#include <utility>

#include "base/logging.hh"
#include "hw/cell.hh"
#include "hw/dma.hh"
#include "net/tnet.hh"
#include "obs/debug.hh"

namespace ap::hw
{

Msc::Msc(sim::Simulator &sim, const MachineConfig &cfg, Cell &cell,
         net::Link &tnet, BufferPool &pool, net::Tnet *direct)
    : sim(sim), cfg(cfg), cell(cell), tnet(tnet), pool(pool),
      direct(direct), userQ(cfg.queueCapacityWords),
      systemQ(cfg.queueCapacityWords),
      remoteQ(cfg.queueCapacityWords),
      getReplyQ(cfg.queueCapacityWords),
      loadReplyQ(cfg.queueCapacityWords)
{
}

bool
Msc::injected_fault()
{
    bool hit = faults && faults->active() &&
               faults->inject_page_fault();
    if (hit) {
        if (tracer)
            tracer->instant(traceTrack, "fault", "injected_page_fault");
        AP_DPRINTF(Fault, "cell %d: injected page fault", cell.id());
    }
    return hit;
}

const char *
Msc::queue_name(const CommandQueue &q) const
{
    if (&q == &userQ)
        return "user_queue";
    if (&q == &systemQ)
        return "system_queue";
    if (&q == &remoteQ)
        return "remote_queue";
    if (&q == &getReplyQ)
        return "get_reply_queue";
    if (&q == &loadReplyQ)
        return "load_reply_queue";
    return "?";
}

void
Msc::enqueue(CommandQueue &q, Command cmd)
{
    cmd.issuedAt = sim.now();
    bool force = faults && faults->active() &&
                 faults->force_overflow();
    if (force) {
        if (tracer)
            tracer->instant(traceTrack, "fault", "forced_spill");
        AP_DPRINTF(Fault, "cell %d: forced spill on %s", cell.id(),
                   queue_name(q));
    }
    bool spilled = q.push(std::move(cmd), force);
    if (spilled) {
        if (tracer)
            tracer->instant(traceTrack, "queue",
                            std::string("spill:") + queue_name(q));
        AP_DPRINTF(Queue, "cell %d: %s spilled (depth %d)", cell.id(),
                   queue_name(q), q.spill_depth());
    }
    // A forced spill can land in an otherwise-empty queue; make sure
    // the refill interrupt is pending before kick() skips the queue
    // for having no hardware-resident commands.
    maybe_refill(q);
    kick();
}

void
Msc::issue_user(Command cmd)
{
    enqueue(userQ, std::move(cmd));
}

void
Msc::issue_system(Command cmd)
{
    enqueue(systemQ, std::move(cmd));
}

std::uint64_t
Msc::issue_remote_load(CellId dst, Addr raddr, std::uint32_t size)
{
    Command cmd;
    cmd.kind = CommandKind::remote_load;
    cmd.dst = dst;
    cmd.raddr = raddr;
    cmd.remoteStride = net::StrideSpec::contiguous(size);
    cmd.token = nextLoadToken++;
    std::uint64_t token = cmd.token;
    if (spans && (cmd.traceId = spans->new_trace()))
        spans->record(cell.id(), cmd.traceId, obs::SpanStage::issue,
                      sim.now(), sim.now(), obs::SpanOp::remote_load);
    enqueue(remoteQ, std::move(cmd));
    return token;
}

bool
Msc::take_load_reply(std::uint64_t token,
                     std::vector<std::uint8_t> &out)
{
    auto it = loadReplies.find(token);
    if (it == loadReplies.end())
        return false;
    out = std::move(it->second);
    loadReplies.erase(it);
    return true;
}

void
Msc::issue_remote_store(CellId dst, Addr raddr,
                        std::vector<std::uint8_t> data)
{
    Command cmd;
    cmd.kind = CommandKind::remote_store;
    cmd.dst = dst;
    cmd.raddr = raddr;
    cmd.inlineData = std::move(data);
    if (spans && (cmd.traceId = spans->new_trace()))
        spans->record(cell.id(), cmd.traceId, obs::SpanStage::issue,
                      sim.now(), sim.now(),
                      obs::SpanOp::remote_store);
    enqueue(remoteQ, std::move(cmd));
}

CommandQueue *
Msc::pick_queue()
{
    // Priority (Section 4.1): remote access is privileged because the
    // processor blocks on remote loads; remote-load replies precede
    // GET replies; system PUT/GET precedes user PUT/GET.
    CommandQueue *order[] = {&remoteQ, &loadReplyQ, &getReplyQ,
                             &systemQ, &userQ};
    for (CommandQueue *q : order)
        if (q->hw_depth() > 0)
            return q;
    return nullptr;
}

void
Msc::maybe_refill(CommandQueue &q)
{
    // "When the queue empties, the MSC+ interrupts the operating
    // system, which then loads data from the buffer in DRAM back into
    // the queue." Refills run concurrently with other queues' sends.
    if (!q.needs_refill() || q.refill_scheduled())
        return;
    q.set_refill_scheduled(true);
    sim.schedule_after(us_to_ticks(cfg.timings.interruptUs),
                       [this, &q]() {
                           int moved = q.refill();
                           q.set_refill_scheduled(false);
                           if (tracer)
                               tracer->instant(
                                   traceTrack, "queue",
                                   std::string("refill:") +
                                       queue_name(q));
                           AP_DPRINTF(Queue,
                                      "cell %d: %s refilled %d "
                                      "commands", cell.id(),
                                      queue_name(q), moved);
                           kick();
                       });
}

void
Msc::kick()
{
    if (senderBusy)
        return;
    CommandQueue *q = pick_queue();
    if (!q)
        return;
    senderBusy = true;
    Command cmd = q->pop();
    maybe_refill(*q);
    Tick popT = sim.now();
    if (spans && cmd.traceId != 0)
        spans->record(cell.id(), cmd.traceId, obs::SpanStage::queue,
                      cmd.issuedAt, popT);
    // One fused event covers the DMA setup plus the payload stream:
    // the byte count is known from the command's stride descriptor
    // before any data moves, so the gather itself can run at DMA
    // completion time (the send flag keeps the sending area stable
    // until then per Section 3.1) and the network injection lands at
    // the exact tick the two-event pipeline used to produce — at half
    // the event cost per send.
    Tick stream = us_to_ticks(cfg.timings.dmaPerByteUs *
                              static_cast<double>(cmd.bytes()));
    auto fire = [this, cmd = std::move(cmd), popT, stream]() mutable {
        process(std::move(cmd), popT, stream);
    };
    static_assert(sim::EventFn::fits<decltype(fire)>(),
                  "send-pipeline closure must stay in the EventFn "
                  "inline buffer");
    sim.schedule_after(us_to_ticks(cfg.timings.dmaSetUs) + stream,
                       std::move(fire));
}

void
Msc::process(Command cmd, Tick start, Tick stream)
{
    // Gather the payload this command sends, if any. Data-bearing
    // gathers fill a pooled buffer that the destination releases
    // after consuming it (receive_body / the RECEIVE copy-out), so
    // steady-state traffic recirculates payload storage.
    std::vector<std::uint8_t> payload;
    switch (cmd.kind) {
      case CommandKind::put:
      case CommandKind::send: {
        if (injected_fault()) {
            local_fault(cmd.laddr);
            return;
        }
        payload = pool.acquire();
        DmaResult r = DmaEngine::gather(cell.mc().mmu(),
                                        cell.mc().memory(), cmd.laddr,
                                        cmd.localStride, payload);
        if (!r.ok) {
            pool.release(std::move(payload));
            local_fault(r.faultAddr);
            return;
        }
        break;
      }
      case CommandKind::get_reply: {
        if (!cmd.isAckProbe) {
            if (injected_fault()) {
                local_fault(cmd.raddr);
                return;
            }
            payload = pool.acquire();
            DmaResult r = DmaEngine::gather(
                cell.mc().mmu(), cell.mc().memory(), cmd.raddr,
                cmd.remoteStride, payload);
            if (!r.ok) {
                pool.release(std::move(payload));
                local_fault(r.faultAddr);
                return;
            }
        }
        break;
      }
      case CommandKind::remote_store:
      case CommandKind::remote_load_reply:
        payload = std::move(cmd.inlineData);
        break;
      case CommandKind::get:
      case CommandKind::remote_load:
        break; // header-only requests
    }

    if (tracer && !payload.empty())
        tracer->span_at(traceTrack, "dma", "dma_send",
                        sim.now() - stream, sim.now());
    finish_send(std::move(cmd), std::move(payload), start);
}

Tick
Msc::send_msg(net::Message msg)
{
    // Sealed dispatch: with no reliable layer stacked the link IS
    // the final Tnet, so skip the Link vtable.
    if (direct)
        return direct->send(std::move(msg));
    return tnet.send(std::move(msg));
}

void
Msc::finish_send(Command cmd, std::vector<std::uint8_t> payload,
                 Tick start)
{
    net::Message msg;
    msg.src = cell.id();
    msg.dst = cmd.dst;
    msg.traceId = cmd.traceId;
    mscStats.payloadBytesSent += payload.size();
    if (spans && cmd.traceId != 0)
        spans->record(cell.id(), cmd.traceId,
                      obs::SpanStage::dma_send, start, sim.now());

    switch (cmd.kind) {
      case CommandKind::put:
        msg.kind = net::MsgKind::put_data;
        msg.raddr = cmd.raddr;
        msg.laddr = cmd.laddr;
        msg.destFlag = cmd.recvFlag;
        msg.remoteStride = cmd.remoteStride;
        msg.payload = std::move(payload);
        ++mscStats.putsSent;
        break;
      case CommandKind::send:
        msg.kind = net::MsgKind::put_data;
        msg.toRingBuffer = true;
        msg.tag = cmd.tag;
        msg.destFlag = cmd.recvFlag;
        msg.payload = std::move(payload);
        ++mscStats.sendsSent;
        break;
      case CommandKind::get:
        msg.kind = net::MsgKind::get_request;
        msg.raddr = cmd.raddr;
        msg.laddr = cmd.laddr;
        msg.destFlag = cmd.sendFlag;   // bumps at the data owner
        msg.originFlag = cmd.recvFlag; // rides back in the reply
        msg.remoteStride = cmd.remoteStride;
        msg.localStride = cmd.localStride;
        msg.isAckProbe = cmd.isAckProbe;
        ++mscStats.getsSent;
        break;
      case CommandKind::get_reply:
        msg.kind = net::MsgKind::get_reply;
        msg.laddr = cmd.laddr;
        msg.originFlag = cmd.recvFlag;
        msg.localStride = cmd.localStride;
        msg.isAckProbe = cmd.isAckProbe;
        msg.payload = std::move(payload);
        ++mscStats.getRepliesSent;
        break;
      case CommandKind::remote_store:
        msg.kind = net::MsgKind::remote_store;
        msg.raddr = cmd.raddr;
        msg.payload = std::move(payload);
        break;
      case CommandKind::remote_load:
        msg.kind = net::MsgKind::remote_load;
        msg.raddr = cmd.raddr;
        msg.remoteStride = cmd.remoteStride;
        msg.token = cmd.token;
        break;
      case CommandKind::remote_load_reply:
        msg.kind = net::MsgKind::remote_load_reply;
        msg.token = cmd.token;
        msg.payload = std::move(payload);
        break;
    }

    AP_DPRINTF(MSC, "cell %d: sent %s to cell %d (%llu bytes)",
               cell.id(), to_string(cmd.kind), cmd.dst,
               static_cast<unsigned long long>(msg.payload.size()));
    send_msg(std::move(msg));

    mscStats.cmdLatencyUs.sample(
        static_cast<std::uint64_t>(ticks_to_us(
            sim.now() - cmd.issuedAt)));
    if (tracer)
        tracer->span(traceTrack, "msc", to_string(cmd.kind),
                     cmd.issuedAt);

    // Combined flag update: the send flag increments when the send
    // DMA completes (PUT/SEND at the origin; GET at the data owner,
    // via the get_reply command's sendFlag).
    if (cmd.kind == CommandKind::put ||
        cmd.kind == CommandKind::send ||
        cmd.kind == CommandKind::get_reply) {
        if (cmd.sendFlag != no_flag) {
            sim.schedule_after(
                us_to_ticks(cfg.timings.flagUpdateUs),
                [this, flag = cmd.sendFlag, tid = cmd.traceId,
                 fbegin = sim.now()]() {
                    if (spans && tid != 0)
                        spans->record(cell.id(), tid,
                                      obs::SpanStage::flag, fbegin,
                                      sim.now());
                    cell.mc().increment_flag(flag);
                });
        }
    }

    senderBusy = false;
    kick();
}

void
Msc::local_fault(Addr addr)
{
    ++mscStats.localFaults;
    if (tracer)
        tracer->instant(traceTrack, "fault", "local_fault");
    AP_DPRINTF(Fault, "cell %d: local fault at 0x%llx (command "
               "dropped)", cell.id(),
               static_cast<unsigned long long>(addr));
    if (faultHook)
        faultHook(cell.id(), addr, false);
    // The OS services the fault; the command is dropped.
    sim.schedule_after(us_to_ticks(cfg.timings.interruptUs),
                       [this]() {
                           senderBusy = false;
                           kick();
                       });
}

void
Msc::remote_fault(Addr addr)
{
    // "If a page fault happens in a remote cell during message
    // transfer, the MSC+ interrupts the operating system and pulls
    // the remaining message from the network."
    ++mscStats.remoteFaults;
    ++mscStats.flushedMessages;
    if (tracer)
        tracer->instant(traceTrack, "fault", "remote_fault_flush");
    AP_DPRINTF(Fault, "cell %d: remote fault at 0x%llx (message "
               "flushed)", cell.id(),
               static_cast<unsigned long long>(addr));
    if (faultHook)
        faultHook(cell.id(), addr, true);
    recvBusyUntil =
        std::max(recvBusyUntil, sim.now()) +
        us_to_ticks(cfg.timings.interruptUs);
}

void
Msc::deliver(net::Message msg)
{
    // Serialize the receive DMA: one message at a time drains from
    // the network into memory.
    Tick start = std::max(sim.now(), recvBusyUntil);
    Tick dma = us_to_ticks(
        cfg.timings.recvDmaSetUs +
        cfg.timings.dmaPerByteUs *
            static_cast<double>(msg.payload.size()));
    Tick finish = start + dma;
    recvBusyUntil = finish;
    if (spans && msg.traceId != 0)
        spans->record(cell.id(), msg.traceId,
                      obs::SpanStage::dma_recv, sim.now(), finish);
    if (tracer && !msg.payload.empty())
        tracer->span_at(traceTrack, "dma", "dma_recv", start, finish);
    AP_DPRINTF(DMA, "cell %d: recv DMA of %s from cell %d (%llu "
               "bytes)", cell.id(), net::to_string(msg.kind), msg.src,
               static_cast<unsigned long long>(msg.payload.size()));
    auto fire = [this, msg = std::move(msg)]() mutable {
        receive_body(std::move(msg));
    };
    static_assert(sim::EventFn::fits<decltype(fire)>(),
                  "receive closure must stay in the EventFn inline "
                  "buffer");
    sim.schedule(finish, std::move(fire));
}

void
Msc::receive_body(net::Message msg)
{
    mscStats.payloadBytesReceived += msg.payload.size();
    AP_DPRINTF(MSC, "cell %d: received %s from cell %d", cell.id(),
               net::to_string(msg.kind), msg.src);

    switch (msg.kind) {
      case net::MsgKind::put_data: {
        if (msg.toRingBuffer) {
            ++mscStats.sendsReceived;
            SendRecord rec{msg.src, msg.tag,
                           std::move(msg.payload)};
            rec.traceId = msg.traceId;
            cell.ring().deposit(std::move(rec));
        } else {
            ++mscStats.putsReceived;
            if (injected_fault()) {
                remote_fault(msg.raddr);
                return;
            }
            DmaResult r = DmaEngine::scatter(
                cell.mc().mmu(), cell.mc().memory(), msg.raddr,
                msg.remoteStride, msg.payload);
            if (!r.ok) {
                remote_fault(r.faultAddr);
                return;
            }
            pool.release(std::move(msg.payload));
        }
        if (spans && msg.traceId != 0 && msg.destFlag != no_flag)
            spans->record(cell.id(), msg.traceId,
                          obs::SpanStage::flag, sim.now(),
                          sim.now());
        cell.mc().increment_flag(msg.destFlag);
        break;
      }
      case net::MsgKind::get_request: {
        ++mscStats.getRequestsReceived;
        Command reply;
        reply.kind = CommandKind::get_reply;
        reply.traceId = msg.traceId;
        reply.dst = msg.src;
        reply.raddr = msg.raddr;
        reply.laddr = msg.laddr;
        reply.sendFlag = msg.destFlag;
        reply.recvFlag = msg.originFlag;
        reply.remoteStride = msg.remoteStride;
        reply.localStride = msg.localStride;
        reply.isAckProbe = msg.isAckProbe;
        enqueue(getReplyQ, std::move(reply));
        break;
      }
      case net::MsgKind::get_reply: {
        ++mscStats.getRepliesReceived;
        if (!msg.isAckProbe && !msg.payload.empty()) {
            if (injected_fault()) {
                remote_fault(msg.laddr);
                return;
            }
            DmaResult r = DmaEngine::scatter(
                cell.mc().mmu(), cell.mc().memory(), msg.laddr,
                msg.localStride, msg.payload);
            if (!r.ok) {
                remote_fault(r.faultAddr);
                return;
            }
            pool.release(std::move(msg.payload));
        }
        if (msg.isAckProbe) {
            ++ackFlag;
            ++mscStats.acksReceived;
            ackCond.notify_all();
        }
        if (spans && msg.traceId != 0 &&
            (msg.originFlag != no_flag || msg.isAckProbe))
            spans->record(cell.id(), msg.traceId,
                          obs::SpanStage::flag, sim.now(),
                          sim.now());
        cell.mc().increment_flag(msg.originFlag);
        break;
      }
      case net::MsgKind::remote_store: {
        ++mscStats.remoteStores;
        if (Mc::is_commreg(msg.raddr)) {
            // Communication registers live in shared space; remote
            // stores to them land in the register file (Section 4.4).
            if (msg.payload.size() != 4 && msg.payload.size() != 8)
                panic("commreg store of %zu bytes (need 4 or 8)",
                      msg.payload.size());
            int index = Mc::commreg_index(msg.raddr);
            for (std::size_t w = 0; w < msg.payload.size() / 4; ++w) {
                std::uint32_t v = 0;
                std::memcpy(&v, msg.payload.data() + 4 * w, 4);
                cell.mc().regs().store(index + static_cast<int>(w), v);
            }
        } else if (!cell.mc().store(msg.raddr, msg.payload)) {
            remote_fault(msg.raddr);
            return;
        }
        pool.release(std::move(msg.payload));
        // Automatic acknowledgement (Section 4.2).
        net::Message ack;
        ack.kind = net::MsgKind::remote_store_ack;
        ack.traceId = msg.traceId;
        ack.src = cell.id();
        ack.dst = msg.src;
        send_msg(std::move(ack));
        break;
      }
      case net::MsgKind::remote_store_ack:
        ++ackFlag;
        ++mscStats.acksReceived;
        if (spans && msg.traceId != 0)
            spans->record(cell.id(), msg.traceId,
                          obs::SpanStage::flag, sim.now(),
                          sim.now());
        ackCond.notify_all();
        break;
      case net::MsgKind::remote_load: {
        ++mscStats.remoteLoads;
        std::vector<std::uint8_t> data;
        DmaResult r = DmaEngine::gather(cell.mc().mmu(),
                                        cell.mc().memory(), msg.raddr,
                                        msg.remoteStride, data);
        if (!r.ok) {
            remote_fault(r.faultAddr);
            return;
        }
        Command reply;
        reply.kind = CommandKind::remote_load_reply;
        reply.traceId = msg.traceId;
        reply.dst = msg.src;
        reply.token = msg.token;
        reply.inlineData = std::move(data);
        enqueue(loadReplyQ, std::move(reply));
        break;
      }
      case net::MsgKind::remote_load_reply:
        loadReplies[msg.token] = std::move(msg.payload);
        if (spans && msg.traceId != 0)
            spans->record(cell.id(), msg.traceId,
                          obs::SpanStage::flag, sim.now(),
                          sim.now());
        loadCond.notify_all();
        break;
      case net::MsgKind::broadcast: {
        // B-net data distribution: land the payload like a PUT.
        if (injected_fault()) {
            remote_fault(msg.raddr);
            return;
        }
        DmaResult r = DmaEngine::scatter(
            cell.mc().mmu(), cell.mc().memory(), msg.raddr,
            net::StrideSpec::contiguous(static_cast<std::uint32_t>(
                msg.payload.size())),
            msg.payload);
        if (!r.ok) {
            remote_fault(r.faultAddr);
            return;
        }
        pool.release(std::move(msg.payload));
        if (spans && msg.traceId != 0 && msg.destFlag != no_flag)
            spans->record(cell.id(), msg.traceId,
                          obs::SpanStage::flag, sim.now(),
                          sim.now());
        cell.mc().increment_flag(msg.destFlag);
        break;
      }
      case net::MsgKind::rnet_ack:
        // Protocol-internal; the reliable layer consumes these before
        // they reach the MSC+. Nothing to do if one slips through.
        break;
    }
}

} // namespace ap::hw
