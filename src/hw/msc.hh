/**
 * @file
 * The MSC+: message controller of one cell (Sections 3.2, 4.1).
 *
 * The MSC+ is the paper's answer to "the handler for PUT/GET should
 * be supported by hardware". It owns five queues in its own RAM —
 * three send queues (user PUT/GET, system PUT/GET, remote access) and
 * two reply queues (GET replies, remote-load replies) — and performs
 * message handling independently of the processor:
 *
 *  - the send controller drains the queues by priority (remote access
 *    first, remote-load replies before GET replies), sets up the send
 *    DMA, streams the payload onto the T-net and asks the MC to
 *    increment the send flag when the DMA completes;
 *  - the receive controller analyzes arriving headers, runs the
 *    receive DMA (scattering stride patterns directly into user
 *    memory through the MMU), increments the receive flag, answers
 *    GET requests automatically, deposits SENDs in the ring buffer,
 *    and services distributed-shared-memory loads/stores;
 *  - queue overflow spills to DRAM and raises the OS refill interrupt
 *    (Section 4.1, "Queues and queue overflows");
 *  - a page fault during a remote transfer interrupts the OS and
 *    flushes the remainder of the message from the network.
 */

#ifndef AP_HW_MSC_HH
#define AP_HW_MSC_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "base/stats.hh"
#include "base/types.hh"
#include "hw/bufpool.hh"
#include "hw/command.hh"
#include "hw/config.hh"
#include "hw/queues.hh"
#include "net/link.hh"
#include "net/message.hh"
#include "obs/tracer.hh"
#include "sim/eventq.hh"
#include "sim/fault.hh"
#include "sim/process.hh"

namespace ap::net
{
class Tnet;
}

namespace ap::hw
{

class Cell;

/** MSC+ statistics. */
struct MscStats
{
    std::uint64_t putsSent = 0;
    std::uint64_t getsSent = 0;
    std::uint64_t sendsSent = 0;
    std::uint64_t getRepliesSent = 0;
    std::uint64_t putsReceived = 0;
    std::uint64_t sendsReceived = 0;
    std::uint64_t getRequestsReceived = 0;
    std::uint64_t getRepliesReceived = 0;
    std::uint64_t remoteStores = 0;
    std::uint64_t remoteLoads = 0;
    std::uint64_t acksReceived = 0;
    std::uint64_t payloadBytesSent = 0;
    std::uint64_t payloadBytesReceived = 0;
    std::uint64_t localFaults = 0;   ///< faults while gathering
    std::uint64_t remoteFaults = 0;  ///< faults while scattering
    std::uint64_t flushedMessages = 0;
    /** Issue-to-network latency of sent commands, microseconds. */
    Histogram cmdLatencyUs;
};

/**
 * Hook invoked when a PUT/GET faults; (cell, faulting logical
 * address, true when the fault happened on the receiving side).
 */
using FaultHook = std::function<void(CellId, Addr, bool)>;

/** The message controller of one cell. */
class Msc
{
  public:
    /**
     * @param sim owning simulator
     * @param cfg machine configuration (timings, queue sizes)
     * @param cell the cell this controller belongs to
     * @param tnet the outgoing link (raw T-net or the reliable
     *             layer stacked on it)
     * @param pool payload buffer pool of this cell's kernel shard
     * @param direct the raw T-net when @p tnet IS the raw T-net
     *               (no reliable layer stacked), for devirtualized
     *               sends; nullptr otherwise
     */
    Msc(sim::Simulator &sim, const MachineConfig &cfg, Cell &cell,
        net::Link &tnet, BufferPool &pool,
        net::Tnet *direct = nullptr);

    // -- processor side ------------------------------------------------

    /**
     * Enqueue a user PUT/GET/SEND command (the 8 stores to the
     * special address). Non-blocking; the caller charges itself the
     * enqueue time.
     */
    void issue_user(Command cmd);

    /** Enqueue a system (OS-issued) PUT/GET command. */
    void issue_system(Command cmd);

    /**
     * Issue a hardware remote load of @p size bytes from @p raddr on
     * @p dst. @return a token to pass to take_load_reply().
     */
    std::uint64_t issue_remote_load(CellId dst, Addr raddr,
                                    std::uint32_t size);

    /**
     * Collect a completed remote load. @return true and move the data
     * into @p out when the reply has arrived.
     */
    bool take_load_reply(std::uint64_t token,
                         std::vector<std::uint8_t> &out);

    /** Condition notified when a remote-load reply lands. */
    sim::Condition &load_cond() { return loadCond; }

    /** Issue a hardware remote store (non-blocking, auto-acked). */
    void issue_remote_store(CellId dst, Addr raddr,
                            std::vector<std::uint8_t> data);

    /** The implicit acknowledge flag (Section 4.2). */
    std::uint64_t ack_count() const { return ackFlag; }

    /** Condition notified when the acknowledge flag increments. */
    sim::Condition &ack_cond() { return ackCond; }

    // -- network side --------------------------------------------------

    /** T-net delivery entry point (attached by the Machine). */
    void deliver(net::Message msg);

    /**
     * Return a payload buffer to this cell's pool once its bytes
     * have been consumed (the runtime's RECEIVE copy-out and the
     * reduction ring-consume paths call this; the MSC+'s own scatter
     * paths release internally). Call only from this cell's shard.
     */
    void recycle_payload(std::vector<std::uint8_t> buf)
    {
        pool.release(std::move(buf));
    }

    // -- observation ---------------------------------------------------

    const MscStats &stats() const { return mscStats; }
    const CommandQueue &user_queue() const { return userQ; }
    const CommandQueue &system_queue() const { return systemQ; }
    const CommandQueue &remote_queue() const { return remoteQ; }
    const CommandQueue &get_reply_queue() const { return getReplyQ; }
    const CommandQueue &load_reply_queue() const { return loadReplyQ; }

    /** Install a page-fault observer. */
    void set_fault_hook(FaultHook hook) { faultHook = std::move(hook); }

    /**
     * Attach a fault injector (nullptr detaches). Injected faults:
     * forced queue overflows (pushes take the DRAM spill + refill
     * path even with room in MSC+ RAM) and page faults during
     * transfer DMA (the command-drop and message-flush reactions of
     * Section 4.1 fire without an actual unmapped page).
     */
    void set_fault_injector(sim::FaultInjector *inj) { faults = inj; }

    /**
     * Attach a cycle-timeline tracer (nullptr detaches). @p track is
     * the timeline track events land on — the owning cell's id.
     */
    void
    set_tracer(obs::Tracer *t, int track)
    {
        tracer = t;
        traceTrack = track;
    }

    /** Attach the machine's span layer (nullptr detaches). */
    void set_spans(obs::SpanLayer *s) { spans = s; }

  private:
    void kick();
    void maybe_refill(CommandQueue &q);
    const char *queue_name(const CommandQueue &q) const;
    CommandQueue *pick_queue();
    void enqueue(CommandQueue &q, Command cmd);
    bool injected_fault();
    /**
     * Runs at send-DMA completion (the single fused event kick()
     * schedules): gathers the payload, then injects. @p start is
     * when the send engine picked the command up; @p stream is the
     * payload streaming time already elapsed inside the event.
     */
    void process(Command cmd, Tick start, Tick stream);
    void finish_send(Command cmd, std::vector<std::uint8_t> payload,
                     Tick start);
    /** Inject @p msg, bypassing the Link vtable when the raw T-net
     *  is wired directly (no reliable layer). */
    Tick send_msg(net::Message msg);
    void receive_body(net::Message msg);
    void local_fault(Addr addr);
    void remote_fault(Addr addr);

    sim::Simulator &sim;
    const MachineConfig &cfg;
    Cell &cell;
    net::Link &tnet;
    BufferPool &pool;
    /** The sealed fast path: non-null iff `tnet` is the raw T-net. */
    net::Tnet *direct;

    CommandQueue userQ;
    CommandQueue systemQ;
    CommandQueue remoteQ;
    CommandQueue getReplyQ;
    CommandQueue loadReplyQ;

    bool senderBusy = false;
    Tick recvBusyUntil = 0;

    std::uint64_t ackFlag = 0;
    sim::Condition ackCond;

    std::uint64_t nextLoadToken = 1;
    std::unordered_map<std::uint64_t, std::vector<std::uint8_t>>
        loadReplies;
    sim::Condition loadCond;

    MscStats mscStats;
    FaultHook faultHook;
    sim::FaultInjector *faults = nullptr;
    obs::Tracer *tracer = nullptr;
    int traceTrack = 0;
    obs::SpanLayer *spans = nullptr;
};

} // namespace ap::hw

#endif // AP_HW_MSC_HH
