/**
 * @file
 * Send/receive DMA data movement with 1-D stride support.
 *
 * The MSC+'s DMA controllers move 4 bytes to 4 megabytes per command
 * and implement the one-dimensional gather/scatter of
 * put_stride()/get_stride() (Sections 3.1, 4.1). All addresses are
 * logical: every page touched goes through the MC's MMU, and a
 * missing mapping aborts the transfer with a fault (the caller — the
 * MSC+ — then raises the OS interrupt and flushes the message).
 */

#ifndef AP_HW_DMA_HH
#define AP_HW_DMA_HH

#include <cstdint>
#include <span>
#include <vector>

#include "base/types.hh"
#include "hw/memory.hh"
#include "hw/mmu.hh"
#include "net/message.hh"

namespace ap::hw
{

/** Outcome of a DMA pass. */
struct DmaResult
{
    bool ok = true;              ///< false = page fault
    Addr faultAddr = 0;          ///< faulting logical address
    std::uint64_t bytesMoved = 0;///< bytes completed before any fault
};

/** Stateless gather/scatter helpers used by the MSC+. */
class DmaEngine
{
  public:
    /**
     * Gather @p spec's pattern starting at logical @p addr into
     * @p out (appended). Partial data may be appended on fault.
     */
    static DmaResult gather(Mmu &mmu, const CellMemory &mem, Addr addr,
                            net::StrideSpec spec,
                            std::vector<std::uint8_t> &out);

    /**
     * Scatter @p buf over @p spec's pattern starting at logical
     * @p addr. @p buf must hold exactly spec.total_bytes() bytes.
     */
    static DmaResult scatter(Mmu &mmu, CellMemory &mem, Addr addr,
                             net::StrideSpec spec,
                             std::span<const std::uint8_t> buf);

  private:
    /** Read one contiguous logical run, page by page. */
    static DmaResult read_run(Mmu &mmu, const CellMemory &mem,
                              Addr addr, std::span<std::uint8_t> buf);

    /** Write one contiguous logical run, page by page. */
    static DmaResult write_run(Mmu &mmu, CellMemory &mem, Addr addr,
                               std::span<const std::uint8_t> buf);
};

} // namespace ap::hw

#endif // AP_HW_DMA_HH
