/**
 * @file
 * Payload buffer pool for the message hot path.
 *
 * A PUT/SEND payload is gathered into a vector on the sending cell,
 * rides the message by value (moves only) and dies at the destination
 * after the receive DMA scatters it — one short-lived heap allocation
 * per message. The pool breaks that cycle: send-side gathers acquire
 * a recycled vector with its capacity intact, and the destination
 * releases the buffer after consuming it, so steady-state traffic
 * performs no payload allocations at all.
 *
 * One pool exists per kernel shard (a single machine-wide pool under
 * the sequential kernel), not per cell: a one-directional flow —
 * every cell PUTting to a fixed partner — recirculates buffers only
 * if the acquire side and the release side share a pool. The pool is
 * deliberately NOT thread-safe: acquires happen inside send events on
 * the owning shard and releases inside receive events on the owning
 * shard, and a shard's events never run concurrently with each other.
 *
 * Cold paths (remote-load replies parked in the token map, spilled
 * commands) keep plain vectors; pooling needs a release point.
 */

#ifndef AP_HW_BUFPOOL_HH
#define AP_HW_BUFPOOL_HH

#include <cstdint>
#include <utility>
#include <vector>

namespace ap::hw
{

/** BufferPool counters, surfaced as sim.alloc.payload.*. */
struct BufferPoolStats
{
    std::uint64_t hits = 0;     ///< acquires served from the freelist
    std::uint64_t misses = 0;   ///< acquires that started empty
    std::uint64_t releases = 0; ///< buffers offered back
    std::uint64_t discards = 0; ///< releases dropped (cap exceeded)
};

/** Freelist of payload vectors with retained capacity. */
class BufferPool
{
  public:
    /** Buffers kept at rest; beyond this, releases are discarded. */
    static constexpr std::size_t max_retained = 64;
    /** Largest capacity worth keeping — a stray giant transfer must
     *  not pin megabytes in the freelist forever. */
    static constexpr std::size_t max_retained_capacity = 256 * 1024;

    /** An empty vector, with recycled capacity when available. */
    std::vector<std::uint8_t>
    acquire()
    {
        if (!freeList.empty()) {
            std::vector<std::uint8_t> b = std::move(freeList.back());
            freeList.pop_back();
            b.clear();
            ++st.hits;
            return b;
        }
        ++st.misses;
        return {};
    }

    /** Offer @p buf back. Capacity-less vectors are ignored (they
     *  carry nothing worth recycling). */
    void
    release(std::vector<std::uint8_t> buf)
    {
        if (buf.capacity() == 0)
            return;
        ++st.releases;
        if (freeList.size() >= max_retained ||
            buf.capacity() > max_retained_capacity) {
            ++st.discards;
            return;
        }
        buf.clear();
        freeList.push_back(std::move(buf));
    }

    const BufferPoolStats &stats() const { return st; }

  private:
    std::vector<std::vector<std::uint8_t>> freeList;
    BufferPoolStats st;
};

} // namespace ap::hw

#endif // AP_HW_BUFPOOL_HH
