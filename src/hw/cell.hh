/**
 * @file
 * One processing element (cell) of the AP1000+ (Figure 5).
 *
 * A cell composes the DRAM image, the MC (MMU + flag updater +
 * communication registers), the MSC+ (queues + DMA + message
 * handling) and the ring buffer of the SEND/RECEIVE model. The
 * SuperSPARC itself is represented by the fiber process that runs the
 * cell's SPMD program (src/core/program.hh).
 */

#ifndef AP_HW_CELL_HH
#define AP_HW_CELL_HH

#include <memory>

#include "base/types.hh"
#include "hw/bufpool.hh"
#include "hw/config.hh"
#include "hw/mc.hh"
#include "hw/memory.hh"
#include "hw/msc.hh"
#include "hw/ringbuf.hh"
#include "net/link.hh"
#include "sim/eventq.hh"

namespace ap::hw
{

/** A processing element. */
class Cell
{
  public:
    /**
     * @param sim owning simulator
     * @param cfg machine configuration
     * @param id this cell's id
     * @param tnet the outgoing message link
     * @param pool payload buffer pool of this cell's kernel shard
     * @param direct the raw T-net for devirtualized sends, or
     *               nullptr when a reliable layer is stacked
     */
    Cell(sim::Simulator &sim, const MachineConfig &cfg, CellId id,
         net::Link &tnet, BufferPool &pool,
         net::Tnet *direct = nullptr);

    Cell(const Cell &) = delete;
    Cell &operator=(const Cell &) = delete;

    /** This cell's id. */
    CellId id() const { return cellId; }

    /** The DRAM image. */
    CellMemory &memory() { return mem; }
    const CellMemory &memory() const { return mem; }

    /** The memory controller. */
    Mc &mc() { return mcUnit; }
    const Mc &mc() const { return mcUnit; }

    /** The message controller. */
    Msc &msc() { return mscUnit; }
    const Msc &msc() const { return mscUnit; }

    /** The SEND/RECEIVE ring buffer. */
    RingBuffer &ring() { return ringBuf; }
    const RingBuffer &ring() const { return ringBuf; }

  private:
    CellId cellId;
    CellMemory mem;
    Mc mcUnit;
    RingBuffer ringBuf;
    Msc mscUnit;
};

} // namespace ap::hw

#endif // AP_HW_CELL_HH
