#include "hw/ringbuf.hh"

#include <algorithm>
#include <utility>

#include "base/logging.hh"
#include "obs/debug.hh"

namespace ap::hw
{

RingBuffer::RingBuffer(std::size_t capacity_bytes)
    : capacityBytes(capacity_bytes)
{
}

void
RingBuffer::deposit(SendRecord rec)
{
    while (usedBytes + rec.payload.size() > capacityBytes) {
        // "If the ring buffer becomes full, the MSC+ interrupts the
        // operating system, which then allocates a new buffer."
        capacityBytes *= 2;
        ++rbStats.growInterrupts;
        if (tracer)
            tracer->instant(traceTrack, "ring", "ring_grow");
        AP_DPRINTF(Ring, "ring buffer grown to %zu bytes",
                   capacityBytes);
    }
    usedBytes += rec.payload.size();
    AP_DPRINTF(Ring, "deposit from cell %d tag %d (%zu bytes, depth "
               "%zu)", rec.src, rec.tag, rec.payload.size(),
               records.size() + 1);
    if (simPtr)
        rec.depositedAt = simPtr->now();
    if (spans && rec.traceId != 0 && simPtr)
        spans->record(spanCell, rec.traceId,
                      obs::SpanStage::ring_deposit, rec.depositedAt,
                      rec.depositedAt);
    records.push_back(std::move(rec));
    ++rbStats.deposits;
    rbStats.maxDepth =
        std::max<std::uint64_t>(rbStats.maxDepth, records.size());
    rbStats.maxBytes =
        std::max<std::uint64_t>(rbStats.maxBytes, usedBytes);
    arrival.notify_all();
}

std::optional<std::size_t>
RingBuffer::find(CellId src, std::int32_t tag) const
{
    for (std::size_t i = 0; i < records.size(); ++i) {
        const SendRecord &r = records[i];
        if ((src == any_source || r.src == src) &&
            (tag == any_tag || r.tag == tag))
            return i;
    }
    return std::nullopt;
}

SendRecord
RingBuffer::take(std::size_t index)
{
    SendRecord r = std::move(records[index]);
    records.erase(records.begin() +
                  static_cast<std::ptrdiff_t>(index));
    usedBytes -= r.payload.size();
    // The buffered wait: deposit to the matching RECEIVE/consume.
    if (spans && r.traceId != 0 && simPtr)
        spans->record(spanCell, r.traceId,
                      obs::SpanStage::ring_receive, r.depositedAt,
                      simPtr->now());
    return r;
}

SendRecord
RingBuffer::receive(CellId src, std::int32_t tag, sim::Process &proc)
{
    std::optional<std::size_t> hit;
    while (!(hit = find(src, tag)))
        proc.wait(arrival);
    ++rbStats.receives;
    ++rbStats.copies;
    return take(*hit);
}

bool
RingBuffer::try_receive(CellId src, std::int32_t tag, SendRecord &out)
{
    auto hit = find(src, tag);
    if (!hit)
        return false;
    ++rbStats.receives;
    ++rbStats.copies;
    out = take(*hit);
    return true;
}

SendRecord
RingBuffer::consume_in_place(CellId src, std::int32_t tag,
                             sim::Process &proc)
{
    std::optional<std::size_t> hit;
    while (!(hit = find(src, tag)))
        proc.wait(arrival);
    ++rbStats.receives;
    ++rbStats.inPlaceReads;
    return take(*hit);
}

std::optional<SendRecord>
RingBuffer::receive_until(CellId src, std::int32_t tag,
                          sim::Process &proc, Tick deadline,
                          bool in_place)
{
    std::optional<std::size_t> hit;
    while (!(hit = find(src, tag))) {
        if (!proc.wait_until(arrival, deadline) &&
            !(hit = find(src, tag)))
            return std::nullopt;
    }
    ++rbStats.receives;
    if (in_place)
        ++rbStats.inPlaceReads;
    else
        ++rbStats.copies;
    return take(*hit);
}

} // namespace ap::hw
