#include "hw/queues.hh"

#include <algorithm>

#include "base/logging.hh"

namespace ap::hw
{

const char *
to_string(CommandKind kind)
{
    switch (kind) {
      case CommandKind::put:
        return "put";
      case CommandKind::get:
        return "get";
      case CommandKind::send:
        return "send";
      case CommandKind::get_reply:
        return "get_reply";
      case CommandKind::remote_store:
        return "remote_store";
      case CommandKind::remote_load:
        return "remote_load";
      case CommandKind::remote_load_reply:
        return "remote_load_reply";
    }
    return "?";
}

CommandQueue::CommandQueue(int capacity_words)
    : capacityWords(capacity_words)
{
    if (capacity_words < Command::queue_words)
        fatal("queue capacity %d words cannot hold one %d-word command",
              capacity_words, Command::queue_words);
}

bool
CommandQueue::push(Command cmd, bool force_spill)
{
    ++queueStats.pushes;
    int used = static_cast<int>(hw.size()) * Command::queue_words;
    // Once anything has spilled, later commands must also spill to
    // preserve FIFO order ("all data written by the processor after
    // the queue becomes full is written into the buffer in DRAM").
    if (force_spill || !spill.empty() ||
        used + Command::queue_words > capacityWords) {
        spill.push_back(std::move(cmd));
        ++queueStats.spills;
        queueStats.maxSpillDepth =
            std::max<std::uint64_t>(queueStats.maxSpillDepth,
                                    spill.size());
        return true;
    }
    hw.push_back(std::move(cmd));
    queueStats.maxHwDepth =
        std::max<std::uint64_t>(queueStats.maxHwDepth, hw.size());
    return false;
}

int
CommandQueue::refill()
{
    if (!needs_refill())
        return 0;
    ++queueStats.refillInterrupts;
    int moved = 0;
    while (!spill.empty() &&
           (static_cast<int>(hw.size()) + 1) * Command::queue_words <=
               capacityWords) {
        hw.push_back(std::move(spill.front()));
        spill.pop_front();
        ++moved;
    }
    queueStats.maxHwDepth =
        std::max<std::uint64_t>(queueStats.maxHwDepth, hw.size());
    return moved;
}

const Command &
CommandQueue::front() const
{
    if (hw.empty())
        panic("front() on empty hardware queue (refill needed?)");
    return hw.front();
}

Command
CommandQueue::pop()
{
    if (hw.empty())
        panic("pop() on empty hardware queue (refill needed?)");
    Command c = std::move(hw.front());
    hw.pop_front();
    ++queueStats.pops;
    return c;
}

} // namespace ap::hw
