/**
 * @file
 * Distributed shared memory address layout (Section 4.2).
 *
 * The SuperSPARC's 64 GB physical space is split in half: 32 GB of
 * local space and 32 GB of shared space divided into equal per-cell
 * blocks. A shared-space access is translated by the MSC+ into a
 * remote load/store: the upper bits select the destination cell, the
 * rest the local address there. This class is that address math.
 */

#ifndef AP_HW_DSM_HH
#define AP_HW_DSM_HH

#include <optional>

#include "base/types.hh"

namespace ap::hw
{

/** Decoded shared-space address. */
struct DsmTarget
{
    CellId cell = invalid_cell;
    Addr localAddr = 0;
};

/** Shared-memory address map of one machine. */
class DsmMap
{
  public:
    /** Total physical space: 36-bit addresses = 64 GB. */
    static constexpr Addr phys_space = Addr{1} << 36;
    /** Shared space starts at the upper half (32 GB). */
    static constexpr Addr shared_base = phys_space / 2;

    /**
     * @param cells machine size
     * @param shared_bytes_per_cell size of each cell's exported block
     */
    DsmMap(int cells, Addr shared_bytes_per_cell);

    /** Start of cell @p cell's block in shared space. */
    Addr block_base(CellId cell) const;

    /** Bytes each cell exports. */
    Addr block_size() const { return blockBytes; }

    /**
     * Decode a shared-space address. @return nullopt when the address
     * is not in shared space or beyond the last cell's block.
     */
    std::optional<DsmTarget> decode(Addr addr) const;

    /** @return true when @p addr lies in shared space. */
    static bool
    is_shared(Addr addr)
    {
        return addr >= shared_base && addr < phys_space;
    }

    /** Encode (cell, local address) into a shared-space address. */
    Addr encode(CellId cell, Addr local) const;

  private:
    int numCells;
    Addr blockBytes;
};

} // namespace ap::hw

#endif // AP_HW_DSM_HH
