/**
 * @file
 * The MC: memory controller of one cell (Section 4, Figure 5).
 *
 * The MC sits on the V-Bus between the SuperSPARC and DRAM and gives
 * the MSC+ three services the PUT/GET architecture needs:
 *  - MMU translation of the logical addresses PUT/GET commands carry;
 *  - the fetch-and-increment flag updater that combines flag updates
 *    with DMA completion;
 *  - the 128 communication registers with present bits.
 */

#ifndef AP_HW_MC_HH
#define AP_HW_MC_HH

#include <cstdint>
#include <span>

#include "base/types.hh"
#include "hw/commreg.hh"
#include "hw/memory.hh"
#include "hw/mmu.hh"
#include "obs/tracer.hh"
#include "sim/process.hh"

namespace ap::hw
{

/** MC statistics. */
struct McStats
{
    std::uint64_t flagIncrements = 0;
    std::uint64_t flagFaults = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t accessFaults = 0;
};

/** The memory controller of one cell. */
class Mc
{
  public:
    /**
     * Logical base of the communication registers. They live in
     * shared memory space (Section 4.4), so a remote store to
     * [commreg_base, commreg_base + 128*4) lands in the register
     * file, not DRAM.
     */
    static constexpr Addr commreg_base = 0xC0000000ull;

    /** @return true when @p addr addresses a communication register. */
    static bool
    is_commreg(Addr addr)
    {
        return addr >= commreg_base &&
               addr < commreg_base +
                          CommRegisterFile::num_registers * 4;
    }

    /** Register index of a communication-register address. */
    static int
    commreg_index(Addr addr)
    {
        return static_cast<int>((addr - commreg_base) / 4);
    }

    /** @param mem this cell's DRAM. */
    explicit Mc(CellMemory &mem);

    /** Address translation hardware. */
    Mmu &mmu() { return mmuUnit; }
    const Mmu &mmu() const { return mmuUnit; }

    /** Communication register file. */
    CommRegisterFile &regs() { return regFile; }
    const CommRegisterFile &regs() const { return regFile; }

    /**
     * Fetch-and-increment the 32-bit flag at logical @p addr and wake
     * any process waiting on flags. Address 0 (no_flag) is a no-op by
     * the paper's convention. @return false on a page fault.
     */
    bool increment_flag(Addr addr);

    /** Read a flag value (processor-side check). 0 on fault. */
    std::uint32_t read_flag(Addr addr);

    /** Condition notified on every flag increment. */
    sim::Condition &flag_cond() { return flagCond; }

    /**
     * Processor/DMA load through the MMU. @return false on fault.
     */
    bool load(Addr addr, std::span<std::uint8_t> buf);

    /**
     * Processor/DMA store through the MMU. @return false on fault.
     */
    bool store(Addr addr, std::span<const std::uint8_t> buf);

    /** The DRAM behind this controller. */
    CellMemory &memory() { return mem; }
    const CellMemory &memory() const { return mem; }

    const McStats &stats() const { return mcStats; }

    /** Attach a cycle-timeline tracer (nullptr detaches). */
    void
    set_tracer(obs::Tracer *t, int track)
    {
        tracer = t;
        traceTrack = track;
    }

  private:
    CellMemory &mem;
    Mmu mmuUnit;
    CommRegisterFile regFile;
    sim::Condition flagCond;
    McStats mcStats;
    obs::Tracer *tracer = nullptr;
    int traceTrack = 0;
};

} // namespace ap::hw

#endif // AP_HW_MC_HH
