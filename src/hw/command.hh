/**
 * @file
 * MSC+ command words.
 *
 * A PUT/GET is issued by storing 8 parameter words to the MSC+'s
 * special address (Section 4.1); this struct is that 8-word command
 * in decoded form. One Command describes one transfer of the
 * put()/get()/put_stride()/get_stride() interface of Section 3.1.
 */

#ifndef AP_HW_COMMAND_HH
#define AP_HW_COMMAND_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "net/message.hh"

namespace ap::hw
{

/** What a queued command asks the MSC+ to do. */
enum class CommandKind : std::uint8_t
{
    put,               ///< one-sided write (stride-capable)
    get,               ///< one-sided read (stride-capable)
    send,              ///< SEND = PUT into the remote ring buffer
    get_reply,         ///< internal: reply to a GET (reply queue)
    remote_store,      ///< DSM hardware store (issued by the MC)
    remote_load,       ///< DSM hardware load (issued by the MC)
    remote_load_reply, ///< internal: reply to a remote load
};

/** @return a short printable name for a command kind. */
const char *to_string(CommandKind kind);

/** A decoded 8-word MSC+ command. */
struct Command
{
    CommandKind kind = CommandKind::put;
    CellId dst = invalid_cell;
    Addr raddr = 0;             ///< remote start address (logical)
    Addr laddr = 0;             ///< local start address (logical)
    Addr sendFlag = no_flag;    ///< flag on the data-sending cell
    Addr recvFlag = no_flag;    ///< flag on the data-receiving cell
    net::StrideSpec localStride;  ///< local-side gather/scatter
    net::StrideSpec remoteStride; ///< remote-side scatter/gather
    std::int32_t tag = 0;       ///< SEND message tag
    std::uint64_t token = 0;    ///< remote-load matching token
    bool isAckProbe = false;    ///< GET to address 0 (PUT ack trick)
    Tick issuedAt = 0;          ///< enqueue time (latency telemetry)
    /** Causal span trace id (obs/span.hh); 0 = untraced. Stamped at
     *  issue and copied onto every message the command spawns. */
    std::uint64_t traceId = 0;
    /** Inline data for remote stores (processor-supplied word). */
    std::vector<std::uint8_t> inlineData;

    /** Words occupied in the MSC+ command queue (Section 4.1). */
    static constexpr int queue_words = 8;

    /** Payload bytes this command will move when sent. */
    std::uint64_t
    bytes() const
    {
        switch (kind) {
          case CommandKind::put:
          case CommandKind::send:
            return localStride.total_bytes();
          case CommandKind::get_reply:
            return remoteStride.total_bytes();
          case CommandKind::remote_store:
          case CommandKind::remote_load_reply:
            return inlineData.size();
          case CommandKind::get:
          case CommandKind::remote_load:
            return 0;
        }
        return 0;
    }
};

} // namespace ap::hw

#endif // AP_HW_COMMAND_HH
