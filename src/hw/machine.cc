#include "hw/machine.hh"

#include "base/logging.hh"

namespace ap::hw
{

Machine::Machine(MachineConfig config)
    : cfg(config), faultInj(cfg.faults),
      tnetNet(simulator, net::Torus::squarest(cfg.cells), cfg.tnet),
      bnetNet(simulator, cfg.cells, cfg.bnet),
      snetNet(simulator, cfg.cells, cfg.snet),
      dsmMap(cfg.cells, cfg.memBytesPerCell / 2)
{
    // Wire fault injection only when the plan injects something: a
    // machine built with the default (empty) plan runs the exact same
    // code paths as before the fault layer existed.
    if (cfg.faults.any()) {
        tnetNet.set_fault_injector(&faultInj);
        if (cfg.faults.jitterMaxUs > 0.0)
            simulator.set_delay_jitter(
                [this](Tick) { return faultInj.jitter(); });
    }
    cells.reserve(static_cast<std::size_t>(cfg.cells));
    for (int i = 0; i < cfg.cells; ++i) {
        cells.push_back(std::make_unique<Cell>(simulator, cfg, i,
                                               tnetNet));
        Cell *c = cells.back().get();
        if (cfg.faults.any())
            c->msc().set_fault_injector(&faultInj);
        tnetNet.attach(i, [c](net::Message msg) {
            c->msc().deliver(std::move(msg));
        });
        bnetNet.attach(i, [c](net::Message msg) {
            c->msc().deliver(std::move(msg));
        });
    }
}

Cell &
Machine::cell(CellId id)
{
    if (id < 0 || static_cast<std::size_t>(id) >= cells.size())
        panic("cell id %d outside machine of %zu cells", id,
              cells.size());
    return *cells[static_cast<std::size_t>(id)];
}

const Cell &
Machine::cell(CellId id) const
{
    if (id < 0 || static_cast<std::size_t>(id) >= cells.size())
        panic("cell id %d outside machine of %zu cells", id,
              cells.size());
    return *cells[static_cast<std::size_t>(id)];
}

void
Machine::set_fault_hook(FaultHook hook)
{
    for (auto &c : cells)
        c->msc().set_fault_hook(hook);
}

std::string
Machine::report() const
{
    const net::TnetStats &t = tnetNet.stats();
    std::string out;
    out += strprintf("=== machine report: %d cells (%dx%d torus), "
                     "t = %.1f us ===\n",
                     cfg.cells, tnetNet.topology().width(),
                     tnetNet.topology().height(),
                     ticks_to_us(simulator.now()));
    out += strprintf("T-net: %llu messages, %llu payload bytes, "
                     "mean size %.1f B, mean distance %.2f hops\n",
                     static_cast<unsigned long long>(t.messages),
                     static_cast<unsigned long long>(t.payloadBytes),
                     t.messageSize.scalar().mean(),
                     t.distance.scalar().mean());
    out += strprintf("B-net: %llu broadcasts\n",
                     static_cast<unsigned long long>(
                         bnetNet.count()));

    MscStats msc{};
    McStats mc{};
    TlbStats tlb{};
    RingBufferStats ring{};
    QueueStats q{};
    std::uint64_t busiest_sent = 0;
    CellId busiest = 0;
    for (const auto &c : cells) {
        const MscStats &s = c->msc().stats();
        msc.putsSent += s.putsSent;
        msc.getsSent += s.getsSent;
        msc.sendsSent += s.sendsSent;
        msc.acksReceived += s.acksReceived;
        msc.remoteStores += s.remoteStores;
        msc.remoteLoads += s.remoteLoads;
        msc.localFaults += s.localFaults;
        msc.remoteFaults += s.remoteFaults;
        std::uint64_t sent = s.putsSent + s.getsSent + s.sendsSent;
        if (sent > busiest_sent) {
            busiest_sent = sent;
            busiest = c->id();
        }
        const McStats &m2 = c->mc().stats();
        mc.flagIncrements += m2.flagIncrements;
        tlb.hits += c->mc().mmu().stats().hits;
        tlb.misses += c->mc().mmu().stats().misses;
        tlb.faults += c->mc().mmu().stats().faults;
        const RingBufferStats &r = c->ring().stats();
        ring.deposits += r.deposits;
        ring.copies += r.copies;
        ring.inPlaceReads += r.inPlaceReads;
        ring.growInterrupts += r.growInterrupts;
        const QueueStats &uq = c->msc().user_queue().stats();
        q.pushes += uq.pushes;
        q.spills += uq.spills;
        q.refillInterrupts += uq.refillInterrupts;
    }
    out += strprintf("MSC+: %llu PUTs, %llu GETs, %llu SENDs, "
                     "%llu acks, %llu rstores, %llu rloads, "
                     "faults %llu/%llu (local/remote)\n",
                     static_cast<unsigned long long>(msc.putsSent),
                     static_cast<unsigned long long>(msc.getsSent),
                     static_cast<unsigned long long>(msc.sendsSent),
                     static_cast<unsigned long long>(
                         msc.acksReceived),
                     static_cast<unsigned long long>(
                         msc.remoteStores),
                     static_cast<unsigned long long>(
                         msc.remoteLoads),
                     static_cast<unsigned long long>(msc.localFaults),
                     static_cast<unsigned long long>(
                         msc.remoteFaults));
    out += strprintf("user queues: %llu commands, %llu spills, "
                     "%llu refill interrupts\n",
                     static_cast<unsigned long long>(q.pushes),
                     static_cast<unsigned long long>(q.spills),
                     static_cast<unsigned long long>(
                         q.refillInterrupts));
    out += strprintf("MC: %llu flag increments; TLB %llu hits / "
                     "%llu misses / %llu faults\n",
                     static_cast<unsigned long long>(
                         mc.flagIncrements),
                     static_cast<unsigned long long>(tlb.hits),
                     static_cast<unsigned long long>(tlb.misses),
                     static_cast<unsigned long long>(tlb.faults));
    out += strprintf("ring buffers: %llu deposits, %llu copies, "
                     "%llu in-place reads, %llu grow interrupts\n",
                     static_cast<unsigned long long>(ring.deposits),
                     static_cast<unsigned long long>(ring.copies),
                     static_cast<unsigned long long>(
                         ring.inPlaceReads),
                     static_cast<unsigned long long>(
                         ring.growInterrupts));
    out += strprintf("busiest sender: cell %d (%llu messages)\n",
                     busiest,
                     static_cast<unsigned long long>(busiest_sent));
    return out;
}

} // namespace ap::hw
