#include "hw/machine.hh"

#include <algorithm>
#include <cstdint>
#include <cstdlib>

#include "base/logging.hh"
#include "obs/json.hh"
#include "sim/shardq.hh"

namespace ap::hw
{

namespace
{

/**
 * The conservative lookahead of this configuration: the minimum
 * model-time distance of any cross-cell effect. A T-net message pays
 * at least prolog + one hop + epilog before touching another cell, a
 * B-net broadcast pays the bus prolog, an S-net release pays the
 * combine latency. cfg.lookaheadUs overrides the derivation.
 */
Tick
derive_lookahead(const MachineConfig &cfg)
{
    double us = cfg.lookaheadUs;
    if (us <= 0.0) {
        us = cfg.tnet.prologUs + cfg.tnet.delayPerHopUs +
             cfg.tnet.epilogUs;
        us = std::min(us, cfg.bnet.prologUs);
        us = std::min(us, cfg.snet.releaseUs);
    }
    Tick l = us_to_ticks(us);
    return l < 1 ? 1 : l;
}

std::unique_ptr<sim::Simulator>
make_kernel(const MachineConfig &cfg)
{
    if (cfg.threads <= 1)
        return std::make_unique<sim::Simulator>();
    sim::ShardConfig sc;
    sc.shards = std::min(cfg.threads, cfg.cells);
    sc.lookahead = derive_lookahead(cfg);
    sc.deterministic = cfg.deterministic;
    // Contiguous cell blocks per shard: squarest() numbers cells
    // row-major, so a block is a band of torus rows and most
    // single-hop neighbours stay shard-local.
    sc.affinityMap = [cells = cfg.cells, shards = sc.shards](int a) {
        if (a < 0)
            return 0; // machine-wide work runs on the coordinator
        if (a >= cells)
            return shards - 1;
        return static_cast<int>(static_cast<long long>(a) * shards /
                                cells);
    };
    return std::make_unique<sim::ShardedSimulator>(sc);
}

} // namespace

sim::ShardedSimulator *
Machine::sharded()
{
    return dynamic_cast<sim::ShardedSimulator *>(&simulator);
}

const sim::ShardedSimulator *
Machine::sharded() const
{
    return dynamic_cast<const sim::ShardedSimulator *>(&simulator);
}

Machine::Machine(MachineConfig config)
    : cfg(config), faultInj(cfg.faults), simOwner(make_kernel(cfg)),
      simulator(*simOwner),
      tnetNet(simulator, net::Torus::squarest(cfg.cells), cfg.tnet),
      bnetNet(simulator, cfg.cells, cfg.bnet),
      snetNet(simulator, cfg.cells, cfg.snet),
      dsmMap(cfg.cells, cfg.memBytesPerCell / 2),
      cellFailed(static_cast<std::size_t>(cfg.cells)),
      waitInfos(static_cast<std::size_t>(cfg.cells)),
      spanLayer(cfg.cells, cfg.flightEvents)
{
    spanLayer.set_mode(cfg.spanMode);
    // Wire fault injection only when the plan injects something: a
    // machine built with the default (empty) plan runs the exact same
    // code paths as before the fault layer existed.
    if (cfg.faults.any()) {
        tnetNet.set_fault_injector(&faultInj);
        faultInj.set_cells(cfg.cells);
        if (cfg.faults.jitterMaxUs > 0.0)
            simulator.set_delay_jitter(
                [this](Tick) { return faultInj.jitter(); });
    }
    if (cfg.reliableNet)
        rnetNet = std::make_unique<net::ReliableNet>(
            simulator, tnetNet, cfg.rnet);
    // The span layer is wired unconditionally: the default flight
    // mode is the always-on black box, and off-mode probes reduce to
    // one branch inside record()/new_trace().
    tnetNet.set_spans(&spanLayer);
    bnetNet.set_spans(&spanLayer);
    snetNet.set_spans(&spanLayer);
    if (rnetNet)
        rnetNet->set_spans(&spanLayer);
    if (!cfg.faults.kills.empty()) {
        auto aliveFn = [this](CellId id) { return !cell_failed(id); };
        tnetNet.set_liveness(aliveFn);
        if (rnetNet)
            rnetNet->set_liveness(aliveFn);
    }

    // The MSC+ injects into the reliable layer when it is on, the raw
    // T-net otherwise; delivery takes the same path in reverse, and a
    // failed cell's inbound traffic is discarded at the last hop.
    net::Link &link =
        rnetNet ? static_cast<net::Link &>(*rnetNet)
                : static_cast<net::Link &>(tnetNet);
    // Sealed fast path: with no reliable layer the link IS the final
    // T-net, so the MSC+ can bypass the Link vtable on every send.
    net::Tnet *direct = rnetNet ? nullptr : &tnetNet;
    // One payload pool per kernel shard, shared by that shard's
    // cells. The cell->pool mapping must match make_kernel's
    // affinity map so each pool is only touched from its own shard.
    int poolCount = sharded() ? sharded()->shards() : 1;
    payloadPools.reserve(static_cast<std::size_t>(poolCount));
    for (int s = 0; s < poolCount; ++s)
        payloadPools.push_back(std::make_unique<BufferPool>());
    cells.reserve(static_cast<std::size_t>(cfg.cells));
    for (int i = 0; i < cfg.cells; ++i) {
        int shard =
            poolCount > 1
                ? static_cast<int>(static_cast<long long>(i) *
                                   poolCount / cfg.cells)
                : 0;
        cells.push_back(std::make_unique<Cell>(
            simulator, cfg, i, link,
            *payloadPools[static_cast<std::size_t>(shard)], direct));
        Cell *c = cells.back().get();
        c->msc().set_spans(&spanLayer);
        c->ring().set_spans(&spanLayer, i, &simulator);
        if (cfg.faults.any())
            c->msc().set_fault_injector(&faultInj);
        auto deliver = [this, c](net::Message msg) {
            if (cell_failed(c->id()))
                return;
            c->msc().deliver(std::move(msg));
        };
        if (rnetNet)
            rnetNet->attach(i, deliver);
        else
            tnetNet.attach(i, deliver);
        bnetNet.attach(i, deliver);
    }
    for (const sim::FaultPlan::CellKill &k : cfg.faults.kills) {
        if (k.cell < 0 || k.cell >= cfg.cells)
            panic("kill plan names cell %d outside machine of %d",
                  k.cell, cfg.cells);
        simulator.schedule_for(
            k.cell, us_to_ticks(k.atUs),
            [this, id = k.cell]() { fail_cell(id); });
    }
    // Kernel telemetry taps: the sharded kernel reports each parallel
    // window through this hook (fired on the coordinator while every
    // worker is parked) and the machine forwards it to the tracer's
    // worker tracks and the barrier_wait critical-path stage.
    if (sim::ShardedSimulator *sh = sharded())
        sh->set_window_hook(
            [this](const sim::WindowRecord &w) { on_window(w); });
    register_stats();
    register_kernel_stats();
}

void
Machine::on_window(const sim::WindowRecord &w)
{
    int shards = static_cast<int>(w.shards.size());
    // Idle (barrier_wait) attribution in model time: the window ends
    // when its busiest shard executes its last event; every other
    // shard waited from its own last event (or the window start if it
    // had none) until then. The straggler gets no span.
    Tick windowDone = 0;
    for (const sim::WindowShard &ws : w.shards)
        windowDone = std::max(windowDone, ws.last);
    if (spanLayer.on() && shards > 1 && windowDone > 0) {
        std::uint64_t tid = spanLayer.new_trace();
        for (int s = 0; s < shards; ++s) {
            const sim::WindowShard &ws =
                w.shards[static_cast<std::size_t>(s)];
            Tick from = ws.events > 0 ? ws.last : w.start;
            if (from >= windowDone)
                continue;
            spanLayer.record(
                -1, tid, obs::SpanStage::barrier_wait, from,
                windowDone, obs::SpanOp::none,
                static_cast<std::uint32_t>(
                    std::min<std::uint64_t>(ws.events, UINT32_MAX)));
        }
    }
    if (tracerPtr) {
        for (int s = 0; s < shards; ++s) {
            const sim::WindowShard &ws =
                w.shards[static_cast<std::size_t>(s)];
            if (ws.events == 0)
                continue;
            tracerPtr->span_at(
                obs::worker_track(s), "kernel",
                strprintf("w%llu:%llu ev",
                          static_cast<unsigned long long>(w.index),
                          static_cast<unsigned long long>(ws.events)),
                w.start, ws.last);
        }
        tracerPtr->counter_at(
            obs::machine_track, "kernel", "imbalance_x1000", w.start,
            static_cast<double>(w.imbalanceX1000));
        tracerPtr->counter_at(
            obs::machine_track, "kernel", "barrier_wait_ns", w.start,
            static_cast<double>(w.barrierWaitNs));
    }
}

void
Machine::fail_cell(CellId id)
{
    if (cell_failed(id))
        return;
    cellFailed[static_cast<std::size_t>(id)] = 1;
    ++cellKills;
    warn("cell %d declared failed at t=%.1f us", id,
         ticks_to_us(simulator.now()));
    snetNet.fail_cell(id);
    if (rnetNet)
        rnetNet->flush_cell(id);
    if (tracerPtr)
        tracerPtr->instant(obs::machine_track, "fault",
                           strprintf("kill:cell%d", id));
    if (killHook)
        killHook(id);
}

void
Machine::set_kill_hook(std::function<void(CellId)> hook)
{
    killHook = std::move(hook);
}

std::string
Machine::wait_graph()
{
    std::string out = strprintf(
        "wait graph at t=%.1f us (%d cells):\n",
        ticks_to_us(simulator.now()), cfg.cells);
    for (int i = 0; i < cfg.cells; ++i) {
        const WaitInfo &w = waitInfos[static_cast<std::size_t>(i)];
        if (cell_failed(i)) {
            out += strprintf("  cell %d: FAILED\n", i);
            continue;
        }
        if (!w.what) {
            out += strprintf("  cell %d: running\n", i);
            continue;
        }
        Cell &c = *cells[static_cast<std::size_t>(i)];
        std::uint64_t live =
            w.addr != no_flag
                ? c.mc().read_flag(w.addr)
                : static_cast<std::uint64_t>(c.msc().ack_count());
        out += strprintf("  cell %d: blocked on %s addr=%#llx "
                         "(have %llu, want %llu) since t=%.1f us\n",
                         i, w.what,
                         static_cast<unsigned long long>(w.addr),
                         static_cast<unsigned long long>(live),
                         static_cast<unsigned long long>(w.target),
                         ticks_to_us(w.since));
    }
    return out;
}

void
Machine::register_stats()
{
    // Machine-wide paths: networks, barriers, fault injector.
    const net::TnetStats &t = tnetNet.stats();
    statsReg.add_counter("tnet.messages", &t.messages);
    statsReg.add_counter("tnet.payload_bytes", &t.payloadBytes);
    statsReg.add_counter("tnet.wire_bytes", &t.wireBytes);
    statsReg.add_counter("tnet.dropped", &t.dropped);
    statsReg.add_counter("tnet.duplicated", &t.duplicated);
    statsReg.add_counter("tnet.reordered", &t.reordered);
    statsReg.add_counter("tnet.corrupted", &t.corrupted);
    statsReg.add_counter("tnet.dead_cell_drops", &t.deadCellDrops);
    statsReg.add_histogram("tnet.distance", &t.distance);
    statsReg.add_histogram("tnet.message_size", &t.messageSize);
    statsReg.add_histogram("tnet.latency_us", &t.latencyUs);

    const net::BnetStats &b = bnetNet.stats();
    statsReg.add_counter("bnet.broadcasts", &b.broadcasts);
    statsReg.add_counter("bnet.payload_bytes", &b.payloadBytes);
    statsReg.add_counter("bnet.wire_bytes", &b.wireBytes);
    statsReg.add_histogram("bnet.occupancy_us", &b.occupancyUs);

    statsReg.add_gauge("snet.episodes",
                       [this]() { return snetNet.total_episodes(); });

    statsReg.add_gauge("spans.recorded",
                       [this]() { return spanLayer.recorded(); });
    statsReg.add_gauge("spans.full_log_events", [this]() {
        return static_cast<std::uint64_t>(spanLayer.events().size());
    });
    statsReg.add_gauge("spans.full_dropped",
                       [this]() { return spanLayer.full_dropped(); });

    const sim::FaultStats &f = faultInj.stats();
    statsReg.add_counter("faults.drops", &f.drops);
    statsReg.add_counter("faults.duplicates", &f.duplicates);
    statsReg.add_counter("faults.reorders", &f.reorders);
    statsReg.add_counter("faults.forced_spills", &f.forcedSpills);
    statsReg.add_counter("faults.injected_page_faults",
                         &f.injectedPageFaults);
    statsReg.add_counter("faults.jittered_events", &f.jitteredEvents);
    statsReg.add_gauge("faults.jitter_ticks", &f.jitterTicks);
    statsReg.add_counter("faults.corruptions", &f.corruptions);
    statsReg.add_gauge("faults.cell_kills",
                       [this]() { return cellKills.load(); });
    // Monotonic, but registered as a gauge: counters bind to plain
    // uint64 fields and this one is an atomic (give-ups fire on the
    // failing cell's shard).
    statsReg.add_gauge("comm.retry.giveup",
                       [this]() { return retryGiveups.load(); });

    // Per-cell subtrees.
    for (auto &cp : cells) {
        Cell *c = cp.get();
        std::string p = strprintf("cell%d.", c->id());

        const MscStats &m = c->msc().stats();
        statsReg.add_counter(p + "msc.puts_sent", &m.putsSent);
        statsReg.add_counter(p + "msc.gets_sent", &m.getsSent);
        statsReg.add_counter(p + "msc.sends_sent", &m.sendsSent);
        statsReg.add_counter(p + "msc.get_replies_sent",
                             &m.getRepliesSent);
        statsReg.add_counter(p + "msc.puts_received",
                             &m.putsReceived);
        statsReg.add_counter(p + "msc.sends_received",
                             &m.sendsReceived);
        statsReg.add_counter(p + "msc.get_requests_received",
                             &m.getRequestsReceived);
        statsReg.add_counter(p + "msc.get_replies_received",
                             &m.getRepliesReceived);
        statsReg.add_counter(p + "msc.remote_stores",
                             &m.remoteStores);
        statsReg.add_counter(p + "msc.remote_loads", &m.remoteLoads);
        statsReg.add_counter(p + "msc.acks_received",
                             &m.acksReceived);
        statsReg.add_counter(p + "msc.payload_bytes_sent",
                             &m.payloadBytesSent);
        statsReg.add_counter(p + "msc.payload_bytes_received",
                             &m.payloadBytesReceived);
        statsReg.add_counter(p + "msc.local_faults", &m.localFaults);
        statsReg.add_counter(p + "msc.remote_faults",
                             &m.remoteFaults);
        statsReg.add_counter(p + "msc.flushed_messages",
                             &m.flushedMessages);
        statsReg.add_histogram(p + "msc.cmd_latency_us",
                               &m.cmdLatencyUs);
        statsReg.add_gauge(p + "msc.messages_sent", [ms = &m]() {
            return ms->putsSent + ms->getsSent + ms->sendsSent;
        });

        auto add_queue = [&](const char *name,
                             const CommandQueue &q) {
            const QueueStats &qs = q.stats();
            std::string qp = p + "msc." + name + ".";
            statsReg.add_counter(qp + "pushes", &qs.pushes);
            statsReg.add_counter(qp + "pops", &qs.pops);
            statsReg.add_counter(qp + "spills", &qs.spills);
            statsReg.add_counter(qp + "refill_interrupts",
                                 &qs.refillInterrupts);
            statsReg.add_gauge(qp + "max_hw_depth", &qs.maxHwDepth);
            statsReg.add_gauge(qp + "max_spill_depth",
                               &qs.maxSpillDepth);
        };
        add_queue("user_queue", c->msc().user_queue());
        add_queue("system_queue", c->msc().system_queue());
        add_queue("remote_queue", c->msc().remote_queue());
        add_queue("get_reply_queue", c->msc().get_reply_queue());
        add_queue("load_reply_queue", c->msc().load_reply_queue());

        const McStats &mc = c->mc().stats();
        statsReg.add_counter(p + "mc.flag_increments",
                             &mc.flagIncrements);
        statsReg.add_counter(p + "mc.flag_faults", &mc.flagFaults);
        statsReg.add_counter(p + "mc.loads", &mc.loads);
        statsReg.add_counter(p + "mc.stores", &mc.stores);
        statsReg.add_counter(p + "mc.access_faults",
                             &mc.accessFaults);

        const CommRegStats &cr = c->mc().regs().stats();
        statsReg.add_counter(p + "commreg.stores", &cr.stores);
        statsReg.add_counter(p + "commreg.loads", &cr.loads);
        statsReg.add_counter(p + "commreg.stalled_loads",
                             &cr.stalledLoads);

        const TlbStats &tlb = c->mc().mmu().stats();
        statsReg.add_counter(p + "mmu.tlb_hits", &tlb.hits);
        statsReg.add_counter(p + "mmu.tlb_misses", &tlb.misses);
        statsReg.add_counter(p + "mmu.page_faults", &tlb.faults);

        const RingBufferStats &rb = c->ring().stats();
        statsReg.add_counter(p + "ring.deposits", &rb.deposits);
        statsReg.add_counter(p + "ring.receives", &rb.receives);
        statsReg.add_counter(p + "ring.copies", &rb.copies);
        statsReg.add_counter(p + "ring.in_place_reads",
                             &rb.inPlaceReads);
        statsReg.add_counter(p + "ring.grow_interrupts",
                             &rb.growInterrupts);
        statsReg.add_gauge(p + "ring.max_depth", &rb.maxDepth);
        statsReg.add_gauge(p + "ring.max_bytes", &rb.maxBytes);

        if (cfg.faults.any()) {
            const sim::FaultInjector::HoldStats &h =
                faultInj.hold_stats(c->id());
            statsReg.add_gauge(p + "fault.held_high_water",
                               &h.heldHighWater);
            statsReg.add_counter(p + "fault.dup_evictions",
                                 &h.dupEvictions);
            statsReg.add_counter(p + "fault.reorder_evictions",
                                 &h.reorderEvictions);
        }

        if (rnetNet) {
            const net::RnetStats &rn = rnetNet->stats(c->id());
            statsReg.add_counter(p + "rnet.data_sent", &rn.dataSent);
            statsReg.add_counter(p + "rnet.retransmits",
                                 &rn.retransmits);
            statsReg.add_counter(p + "rnet.acks_piggybacked",
                                 &rn.acksPiggybacked);
            statsReg.add_counter(p + "rnet.queued_full",
                                 &rn.queuedFull);
            statsReg.add_gauge(p + "rnet.window_high_water",
                               &rn.windowHighWater);
            statsReg.add_counter(p + "rnet.aborted",
                                 &rn.abortedMsgs);
            statsReg.add_counter(p + "rnet.dup_drops", &rn.dupDrops);
            statsReg.add_counter(p + "rnet.ooo_buffered",
                                 &rn.oooBuffered);
            statsReg.add_counter(p + "rnet.ooo_evictions",
                                 &rn.oooEvictions);
            statsReg.add_counter(p + "rnet.checksum_drops",
                                 &rn.checksumDrops);
            statsReg.add_counter(p + "rnet.acks_sent", &rn.acksSent);
            statsReg.add_histogram(p + "rnet.ack_latency_us",
                                   &rn.ackLatencyUs);
        }
    }
}

void
Machine::register_kernel_stats()
{
    // Kernel self-telemetry under "sim.": how the run executed
    // (kernel shape, windows, host wall-clock waits) as opposed to
    // what the machine did. Determinism byte-compares exclude this
    // prefix — per-shard counts and wall-clock can never match
    // across kernels (see DESIGN.md, Kernel telemetry).
    statsReg.add_gauge("sim.executed_events",
                       [this]() { return simulator.executed(); });
    statsReg.add_gauge("sim.pending_events", [this]() {
        return static_cast<std::uint64_t>(simulator.pending());
    });

    // Kernel allocation telemetry: event-node pool traffic, EventFn
    // heap spills and payload-pool traffic. The CI perf job asserts
    // that pool_miss and fn_heap stop growing once a workload reaches
    // steady state — the zero-allocation contract of the hot path.
    statsReg.add_gauge("sim.alloc.pool_hits", [this]() {
        return simulator.alloc_stats().poolHits;
    });
    statsReg.add_gauge("sim.alloc.pool_miss", [this]() {
        return simulator.alloc_stats().poolMisses;
    });
    statsReg.add_gauge("sim.alloc.pool_blocks", [this]() {
        return simulator.alloc_stats().poolBlocks;
    });
    statsReg.add_gauge("sim.alloc.fn_heap", [this]() {
        return simulator.alloc_stats().fnHeap;
    });
    statsReg.add_gauge("sim.alloc.payload_hits", [this]() {
        std::uint64_t v = 0;
        for (const auto &p : payloadPools)
            v += p->stats().hits;
        return v;
    });
    statsReg.add_gauge("sim.alloc.payload_miss", [this]() {
        std::uint64_t v = 0;
        for (const auto &p : payloadPools)
            v += p->stats().misses;
        return v;
    });
    statsReg.add_gauge("sim.alloc.payload_discards", [this]() {
        std::uint64_t v = 0;
        for (const auto &p : payloadPools)
            v += p->stats().discards;
        return v;
    });
    // DRAM image recycler traffic. Process-wide rather than
    // per-machine (the cache outlives machines by design), so these
    // are cumulative across every machine this process built.
    statsReg.add_gauge("sim.alloc.image_hits",
                       []() { return CellMemory::image_cache_hits(); });
    statsReg.add_gauge("sim.alloc.image_miss", []() {
        return CellMemory::image_cache_misses();
    });

    const sim::ShardedSimulator *sh = sharded();
    if (!sh)
        return;
    statsReg.add_gauge("sim.kernel.shards", [sh]() {
        return static_cast<std::uint64_t>(sh->shards());
    });
    statsReg.add_gauge("sim.kernel.lookahead_ticks",
                       [sh]() { return sh->lookahead(); });
    statsReg.add_gauge("sim.kernel.deterministic", [sh]() {
        return static_cast<std::uint64_t>(sh->deterministic());
    });
    statsReg.add_gauge("sim.kernel.lookahead_violations",
                       [sh]() { return sh->lookahead_violations(); });

    const sim::WindowAgg &w = sh->window_stats();
    statsReg.add_gauge("sim.window.count", &w.windows);
    statsReg.add_gauge("sim.window.events", &w.events);
    statsReg.add_gauge("sim.window.horizon_advance_ticks",
                       &w.horizonAdvance);
    statsReg.add_gauge("sim.window.barrier_wait_ns", [sh]() {
        std::uint64_t ns = 0;
        for (int s = 0; s < sh->shards(); ++s)
            ns += sh->shard_stats(s).barrierWaitNs;
        return ns;
    });
    statsReg.add_gauge("sim.window.merge_ns", &w.mergeNs);
    statsReg.add_gauge("sim.window.imbalance_max_x1000",
                       &w.imbalanceMaxX1000);
    statsReg.add_gauge("sim.window.imbalance_avg_x1000", [&w]() {
        return w.windows ? w.imbalanceSumX1000 / w.windows : 0;
    });

    for (int s = 0; s < sh->shards(); ++s) {
        const sim::ShardStats &st = sh->shard_stats(s);
        std::string p = strprintf("sim.shard.%d.", s);
        statsReg.add_gauge(p + "executed", &st.executed);
        statsReg.add_gauge(p + "handoffs_in", &st.handoffsIn);
        statsReg.add_gauge(p + "handoffs_out", &st.handoffsOut);
        statsReg.add_gauge(p + "max_pending", &st.maxPending);
        statsReg.add_gauge(p + "barrier_wait_ns", &st.barrierWaitNs);
    }
}

void
Machine::run_to_completion()
{
    if (samplerPtr)
        samplerPtr->run(simulator);
    else
        simulator.run();
}

obs::TimelineSampler &
Machine::enable_timeline(double periodUs, std::size_t capacity)
{
    if (!samplerPtr)
        samplerPtr = std::make_unique<obs::TimelineSampler>(
            statsReg, std::max<Tick>(us_to_ticks(periodUs), 1),
            obs::TimelineSampler::default_series(), capacity);
    return *samplerPtr;
}

bool
Machine::write_timeline(const std::string &path) const
{
    if (!samplerPtr)
        return false;
    return samplerPtr->write(path);
}

bool
Machine::write_timeline_csv(const std::string &path) const
{
    if (!samplerPtr)
        return false;
    return samplerPtr->write_csv(path);
}

std::string
Machine::stats_json(bool pretty) const
{
    return statsReg.dump_json(pretty);
}

std::string
Machine::stats_text() const
{
    return statsReg.dump_text();
}

bool
Machine::dump_stats(const std::string &path) const
{
    return obs::write_file(path, stats_json(true));
}

void
Machine::enable_tracing(std::size_t capacity)
{
    if (tracerPtr)
        return;
    tracerPtr = std::make_unique<obs::Tracer>(simulator, capacity);
    tnetNet.set_tracer(tracerPtr.get());
    bnetNet.set_tracer(tracerPtr.get());
    if (rnetNet)
        rnetNet->set_tracer(tracerPtr.get());
    for (auto &c : cells) {
        int track = c->id();
        c->msc().set_tracer(tracerPtr.get(), track);
        c->mc().set_tracer(tracerPtr.get(), track);
        c->ring().set_tracer(tracerPtr.get(), track);
    }
}

bool
Machine::write_trace(const std::string &path) const
{
    if (!tracerPtr)
        return false;
    return tracerPtr->write_chrome_json(path);
}

std::string
Machine::postmortem(std::size_t maxPerCell)
{
    std::string out = strprintf(
        "flight recorder (span mode %s, %llu events recorded, last "
        "%zu per cell):\n",
        obs::to_string(spanLayer.mode()),
        static_cast<unsigned long long>(spanLayer.recorded()),
        maxPerCell);
    out += obs::flight_text(spanLayer.flight_events(maxPerCell));
    if (!cfg.postmortemOut.empty()) {
        if (dump_flight_recorder(cfg.postmortemOut))
            out += strprintf("full flight rings dumped to %s\n",
                             cfg.postmortemOut.c_str());
        else
            out += strprintf("(failed to write flight dump %s)\n",
                             cfg.postmortemOut.c_str());
    }
    return out;
}

bool
Machine::dump_flight_recorder(const std::string &path) const
{
    return obs::write_file(
        path, obs::span_chrome_json(spanLayer.flight_events()));
}

std::string
Machine::flight_report() const
{
    std::uint64_t retained = 0, dropped = 0;
    for (int i = -1; i < cfg.cells; ++i) {
        const obs::FlightRecorder &r = spanLayer.flight(i);
        retained += r.size();
        dropped += r.dropped();
    }
    return strprintf(
        "flight recorder: %llu span events retained, %llu aged out "
        "(%zu per-cell capacity, mode %s)\n",
        static_cast<unsigned long long>(retained),
        static_cast<unsigned long long>(dropped),
        cfg.flightEvents, obs::to_string(spanLayer.mode()));
}

Cell &
Machine::cell(CellId id)
{
    if (id < 0 || static_cast<std::size_t>(id) >= cells.size())
        panic("cell id %d outside machine of %zu cells", id,
              cells.size());
    return *cells[static_cast<std::size_t>(id)];
}

const Cell &
Machine::cell(CellId id) const
{
    if (id < 0 || static_cast<std::size_t>(id) >= cells.size())
        panic("cell id %d outside machine of %zu cells", id,
              cells.size());
    return *cells[static_cast<std::size_t>(id)];
}

void
Machine::set_fault_hook(FaultHook hook)
{
    for (auto &c : cells)
        c->msc().set_fault_hook(hook);
}

std::string
Machine::report() const
{
    // Everything below comes from registry walks: sum("*...") folds a
    // counter over every cell, max_over finds the busiest cell, and
    // histogram means read the registered histogram entries.
    const obs::StatsRegistry &r = statsReg;
    auto llu = [](std::uint64_t v) {
        return static_cast<unsigned long long>(v);
    };
    auto hist_mean = [&r](const char *path) {
        const obs::StatEntry *e = r.find(path);
        return e && e->hist ? e->hist->scalar().mean() : 0.0;
    };

    std::string out;
    out += strprintf("=== machine report: %d cells (%dx%d torus), "
                     "t = %.1f us ===\n",
                     cfg.cells, tnetNet.topology().width(),
                     tnetNet.topology().height(),
                     ticks_to_us(simulator.now()));
    out += strprintf("T-net: %llu messages, %llu payload bytes, "
                     "mean size %.1f B, mean distance %.2f hops\n",
                     llu(r.value("tnet.messages")),
                     llu(r.value("tnet.payload_bytes")),
                     hist_mean("tnet.message_size"),
                     hist_mean("tnet.distance"));
    out += strprintf("B-net: %llu broadcasts\n",
                     llu(r.value("bnet.broadcasts")));
    if (rnetNet)
        out += strprintf("rnet: %llu sent, %llu retransmits, "
                         "%llu dup drops, %llu ooo buffered, "
                         "%llu standalone acks\n",
                         llu(r.sum("*.rnet.data_sent")),
                         llu(r.sum("*.rnet.retransmits")),
                         llu(r.sum("*.rnet.dup_drops")),
                         llu(r.sum("*.rnet.ooo_buffered")),
                         llu(r.sum("*.rnet.acks_sent")));
    out += strprintf("MSC+: %llu PUTs, %llu GETs, %llu SENDs, "
                     "%llu acks, %llu rstores, %llu rloads, "
                     "faults %llu/%llu (local/remote)\n",
                     llu(r.sum("*.msc.puts_sent")),
                     llu(r.sum("*.msc.gets_sent")),
                     llu(r.sum("*.msc.sends_sent")),
                     llu(r.sum("*.msc.acks_received")),
                     llu(r.sum("*.msc.remote_stores")),
                     llu(r.sum("*.msc.remote_loads")),
                     llu(r.sum("*.msc.local_faults")),
                     llu(r.sum("*.msc.remote_faults")));
    out += strprintf("user queues: %llu commands, %llu spills, "
                     "%llu refill interrupts\n",
                     llu(r.sum("*.msc.user_queue.pushes")),
                     llu(r.sum("*.msc.user_queue.spills")),
                     llu(r.sum(
                         "*.msc.user_queue.refill_interrupts")));
    out += strprintf("MC: %llu flag increments; TLB %llu hits / "
                     "%llu misses / %llu faults\n",
                     llu(r.sum("*.mc.flag_increments")),
                     llu(r.sum("*.mmu.tlb_hits")),
                     llu(r.sum("*.mmu.tlb_misses")),
                     llu(r.sum("*.mmu.page_faults")));
    out += strprintf("ring buffers: %llu deposits, %llu copies, "
                     "%llu in-place reads, %llu grow interrupts\n",
                     llu(r.sum("*.ring.deposits")),
                     llu(r.sum("*.ring.copies")),
                     llu(r.sum("*.ring.in_place_reads")),
                     llu(r.sum("*.ring.grow_interrupts")));
    if (r.find("sim.kernel.shards"))
        out += strprintf(
            "kernel: %llu shards, %llu events, %llu windows, "
            "%llu handoffs, barrier wait %.2f ms, merge %.2f ms, "
            "imbalance max %.2fx\n",
            llu(r.value("sim.kernel.shards")),
            llu(r.value("sim.executed_events")),
            llu(r.value("sim.window.count")),
            llu(r.sum("sim.shard.*.handoffs_out")),
            static_cast<double>(
                r.value("sim.window.barrier_wait_ns")) /
                1e6,
            static_cast<double>(r.value("sim.window.merge_ns")) /
                1e6,
            static_cast<double>(
                r.value("sim.window.imbalance_max_x1000")) /
                1000.0);

    std::string who;
    std::uint64_t busiest_sent =
        r.max_over("*.msc.messages_sent", &who);
    // Winning path is "cell<N>.msc.messages_sent".
    CellId busiest = who.size() > 4
                         ? static_cast<CellId>(
                               std::atoi(who.c_str() + 4))
                         : 0;
    out += strprintf("busiest sender: cell %d (%llu messages)\n",
                     busiest, llu(busiest_sent));
    return out;
}

} // namespace ap::hw
