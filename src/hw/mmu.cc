#include "hw/mmu.hh"

#include "base/logging.hh"

namespace ap::hw
{

namespace
{

constexpr Addr
page_mask(std::size_t bits)
{
    return (Addr{1} << bits) - 1;
}

} // namespace

Mmu::Mmu()
    : smallTlb(small_tlb_entries), largeTlb(large_tlb_entries)
{
}

void
Mmu::map(Addr vaddr, Addr paddr, bool large, bool writable)
{
    std::size_t bits = large ? large_page_bits : small_page_bits;
    if (vaddr & page_mask(bits))
        fatal("map: logical %#llx not aligned to %zu-bit page",
              static_cast<unsigned long long>(vaddr), bits);
    if (paddr & page_mask(bits))
        fatal("map: physical %#llx not aligned to %zu-bit page",
              static_cast<unsigned long long>(paddr), bits);
    Addr vpn = vaddr >> bits;
    table[(vpn << 1) | (large ? 1 : 0)] =
        PageEntry{paddr >> bits, large, writable};
}

void
Mmu::unmap(Addr vaddr)
{
    table.erase((vaddr >> small_page_bits) << 1);
    table.erase(((vaddr >> large_page_bits) << 1) | 1);
    flush_tlb();
}

void
Mmu::map_linear(std::size_t bytes, bool writable)
{
    Addr pages = (bytes + page_mask(small_page_bits)) >>
                 small_page_bits;
    for (Addr p = 0; p < pages; ++p)
        map(p << small_page_bits, p << small_page_bits, false,
            writable);
}

std::optional<Mmu::PageEntry>
Mmu::lookup_table(Addr vaddr, Addr &vpn_out, bool &large_out) const
{
    // Small pages take precedence; a large mapping acts as backstop.
    Addr svpn = vaddr >> small_page_bits;
    auto it = table.find(svpn << 1);
    if (it != table.end()) {
        vpn_out = svpn;
        large_out = false;
        return it->second;
    }
    Addr lvpn = vaddr >> large_page_bits;
    it = table.find((lvpn << 1) | 1);
    if (it != table.end()) {
        vpn_out = lvpn;
        large_out = true;
        return it->second;
    }
    return std::nullopt;
}

Translation
Mmu::translate(Addr vaddr, bool write)
{
    Translation t;

    // TLB probe: both arrays, direct-mapped.
    Addr svpn = vaddr >> small_page_bits;
    TlbEntry &se = smallTlb[svpn % small_tlb_entries];
    if (se.valid && se.vpn == svpn) {
        if (write && !se.writable) {
            ++tlbStats.faults;
            return t;
        }
        ++tlbStats.hits;
        t.valid = true;
        t.tlbHit = true;
        t.writable = se.writable;
        t.paddr = (se.pframe << small_page_bits) |
                  (vaddr & page_mask(small_page_bits));
        return t;
    }
    Addr lvpn = vaddr >> large_page_bits;
    TlbEntry &le = largeTlb[lvpn % large_tlb_entries];
    if (le.valid && le.vpn == lvpn) {
        if (write && !le.writable) {
            ++tlbStats.faults;
            return t;
        }
        ++tlbStats.hits;
        t.valid = true;
        t.tlbHit = true;
        t.writable = le.writable;
        t.paddr = (le.pframe << large_page_bits) |
                  (vaddr & page_mask(large_page_bits));
        return t;
    }

    // TLB miss: walk the page table.
    Addr vpn = 0;
    bool large = false;
    auto entry = lookup_table(vaddr, vpn, large);
    if (!entry) {
        ++tlbStats.faults;
        return t;
    }
    ++tlbStats.misses;
    if (write && !entry->writable) {
        ++tlbStats.faults;
        return t;
    }

    // Fill the appropriate TLB (direct-mapped replacement).
    if (large) {
        TlbEntry &e = largeTlb[vpn % large_tlb_entries];
        e = TlbEntry{true, vpn, entry->pframe, entry->writable};
        t.paddr = (entry->pframe << large_page_bits) |
                  (vaddr & page_mask(large_page_bits));
    } else {
        TlbEntry &e = smallTlb[vpn % small_tlb_entries];
        e = TlbEntry{true, vpn, entry->pframe, entry->writable};
        t.paddr = (entry->pframe << small_page_bits) |
                  (vaddr & page_mask(small_page_bits));
    }
    t.valid = true;
    t.tlbHit = false;
    t.writable = entry->writable;
    return t;
}

Translation
Mmu::peek(Addr vaddr) const
{
    Translation t;
    Addr vpn = 0;
    bool large = false;
    auto entry = lookup_table(vaddr, vpn, large);
    if (!entry)
        return t;
    std::size_t bits = large ? large_page_bits : small_page_bits;
    t.valid = true;
    t.writable = entry->writable;
    t.paddr = (entry->pframe << bits) | (vaddr & page_mask(bits));
    return t;
}

void
Mmu::flush_tlb()
{
    for (auto &e : smallTlb)
        e.valid = false;
    for (auto &e : largeTlb)
        e.valid = false;
}

} // namespace ap::hw
