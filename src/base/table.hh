/**
 * @file
 * ASCII table rendering for the bench binaries that reprint the
 * paper's tables next to our measured values.
 */

#ifndef AP_BASE_TABLE_HH
#define AP_BASE_TABLE_HH

#include <string>
#include <vector>

namespace ap
{

/** Column-aligned ASCII table with an optional title. */
class Table
{
  public:
    /** Construct with column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Set a title printed above the table. */
    void title(std::string t) { titleText = std::move(t); }

    /** Append a row; must have as many cells as there are headers. */
    void add_row(std::vector<std::string> cells);

    /** Render the table to a string. */
    std::string str() const;

    /** Render and print to stdout. */
    void print() const;

    /** Format a double with @p prec digits after the point. */
    static std::string num(double v, int prec = 2);

  private:
    std::string titleText;
    std::vector<std::string> headerRow;
    std::vector<std::vector<std::string>> rows;
};

} // namespace ap

#endif // AP_BASE_TABLE_HH
