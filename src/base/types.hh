/**
 * @file
 * Fundamental type aliases shared by every AP1000+ library.
 *
 * The simulator counts time in integer ticks; one tick is one
 * nanosecond, so the microsecond-denominated MLSim parameters of the
 * paper (Figure 6) convert exactly with a factor of 1000.
 */

#ifndef AP_BASE_TYPES_HH
#define AP_BASE_TYPES_HH

#include <cstdint>
#include <limits>

namespace ap
{

/** Simulated time in nanoseconds. */
using Tick = std::uint64_t;

/** Sentinel for "no scheduled time". */
constexpr Tick max_tick = std::numeric_limits<Tick>::max();

/** Ticks per microsecond (MLSim parameters are microseconds). */
constexpr Tick ticks_per_us = 1000;

/** Convert a microsecond value (possibly fractional) to ticks. */
constexpr Tick
us_to_ticks(double us)
{
    return static_cast<Tick>(us * static_cast<double>(ticks_per_us) + 0.5);
}

/** Convert ticks back to microseconds. */
constexpr double
ticks_to_us(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(ticks_per_us);
}

/** Identifier of a processing element (cell). */
using CellId = std::int32_t;

/** Sentinel cell id used for "no cell" / broadcast destinations. */
constexpr CellId invalid_cell = -1;

/** Logical (virtual) address inside a cell. */
using Addr = std::uint64_t;

/**
 * The paper's flag-address convention: address 0 means "do not update
 * any flag" (Section 4.1, "if flag addresses are specified as 0, MSC+
 * does not update the flag").
 */
constexpr Addr no_flag = 0;

/**
 * The paper's ack convention for GET: destination address 0 makes the
 * GET packet bounce without copying remote data, so its reply doubles
 * as a PUT acknowledgement (Section 4.1, "Acknowledge packet").
 */
constexpr Addr ack_probe_addr = 0;

} // namespace ap

#endif // AP_BASE_TYPES_HH
