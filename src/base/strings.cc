#include "base/strings.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace ap
{

std::string_view
trim(std::string_view s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::vector<std::string>
split(std::string_view s, char delim)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == delim) {
            out.emplace_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::vector<std::string>
split_ws(std::string_view s)
{
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
        std::size_t start = i;
        while (i < s.size() &&
               !std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
        if (i > start)
            out.emplace_back(s.substr(start, i - start));
    }
    return out;
}

std::optional<double>
parse_double(std::string_view s)
{
    std::string buf(trim(s));
    if (buf.empty())
        return std::nullopt;
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(buf.c_str(), &end);
    if (errno != 0 || end != buf.c_str() + buf.size())
        return std::nullopt;
    return v;
}

std::optional<std::int64_t>
parse_int(std::string_view s)
{
    std::string buf(trim(s));
    if (buf.empty())
        return std::nullopt;
    errno = 0;
    char *end = nullptr;
    long long v = std::strtoll(buf.c_str(), &end, 10);
    if (errno != 0 || end != buf.c_str() + buf.size())
        return std::nullopt;
    return static_cast<std::int64_t>(v);
}

bool
starts_with(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

std::string
to_lower(std::string_view s)
{
    std::string out(s);
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

} // namespace ap
