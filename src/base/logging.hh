/**
 * @file
 * Error and status reporting in the gem5 style.
 *
 * panic()  - an internal simulator invariant broke; aborts.
 * fatal()  - the user asked for something impossible; exits cleanly.
 * warn()   - suspicious but survivable condition.
 * inform() - plain status output.
 */

#ifndef AP_BASE_LOGGING_HH
#define AP_BASE_LOGGING_HH

#include <cstdarg>
#include <string>

namespace ap
{

/** Abort with a formatted message; for simulator bugs. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit(1) with a formatted message; for user errors. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Suppress warn()/inform() output (used by tests and benches). */
void set_quiet(bool quiet);

/** @return true when warn()/inform() output is suppressed. */
bool quiet();

/** printf-style formatting into a std::string. */
std::string vstrprintf(const char *fmt, va_list args);

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace ap

#endif // AP_BASE_LOGGING_HH
