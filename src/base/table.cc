#include "base/table.hh"

#include <cstdio>

#include "base/logging.hh"

namespace ap
{

Table::Table(std::vector<std::string> headers)
    : headerRow(std::move(headers))
{
}

void
Table::add_row(std::vector<std::string> cells)
{
    if (cells.size() != headerRow.size())
        panic("table row has %zu cells, expected %zu", cells.size(),
              headerRow.size());
    rows.push_back(std::move(cells));
}

std::string
Table::num(double v, int prec)
{
    return strprintf("%.*f", prec, v);
}

std::string
Table::str() const
{
    std::vector<std::size_t> width(headerRow.size(), 0);
    for (std::size_t c = 0; c < headerRow.size(); ++c)
        width[c] = headerRow[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto render_row = [&](const std::vector<std::string> &row) {
        std::string line = "|";
        for (std::size_t c = 0; c < row.size(); ++c) {
            line += ' ';
            line += row[c];
            line.append(width[c] - row[c].size(), ' ');
            line += " |";
        }
        line += '\n';
        return line;
    };

    std::string rule = "+";
    for (std::size_t c = 0; c < width.size(); ++c) {
        rule.append(width[c] + 2, '-');
        rule += '+';
    }
    rule += '\n';

    std::string out;
    if (!titleText.empty())
        out += titleText + "\n";
    out += rule;
    out += render_row(headerRow);
    out += rule;
    for (const auto &row : rows)
        out += render_row(row);
    out += rule;
    return out;
}

void
Table::print() const
{
    std::fputs(str().c_str(), stdout);
}

} // namespace ap
