#include "base/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace ap
{

namespace
{

bool quiet_flag = false;

void
vreport(const char *tag, const char *fmt, va_list args)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, args);
    std::fputc('\n', stderr);
}

} // namespace

void
set_quiet(bool quiet)
{
    quiet_flag = quiet;
}

bool
quiet()
{
    return quiet_flag;
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (quiet_flag)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (quiet_flag)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

std::string
vstrprintf(const char *fmt, va_list args)
{
    va_list copy;
    va_copy(copy, args);
    int n = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (n < 0)
        return {};
    std::vector<char> buf(static_cast<std::size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<std::size_t>(n));
}

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string s = vstrprintf(fmt, args);
    va_end(args);
    return s;
}

} // namespace ap
