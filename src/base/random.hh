/**
 * @file
 * Deterministic pseudo-random number generation for workloads.
 *
 * Two generators live here:
 *  - Random: a splitmix64/xoshiro-style engine used wherever a
 *    workload needs reproducible randomness (CG/SCG sparsity
 *    patterns, property-test inputs);
 *  - NasLcg: the linear congruential generator specified by the NAS
 *    parallel benchmarks (a = 5^13, modulus 2^46), which the EP
 *    kernel requires so that its pseudo-random pair counts are the
 *    real ones.
 */

#ifndef AP_BASE_RANDOM_HH
#define AP_BASE_RANDOM_HH

#include <cstdint>

namespace ap
{

/** Deterministic 64-bit engine (splitmix64 core). */
class Random
{
  public:
    /** Construct with an explicit seed; identical seeds replay. */
    explicit Random(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state(seed)
    {}

    /** @return the next raw 64-bit value. */
    std::uint64_t
    next()
    {
        state += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** @return uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** @return uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
                below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** @return uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    std::uint64_t state;
};

/**
 * The NAS parallel benchmark pseudo-random generator:
 * x_{k+1} = a * x_k mod 2^46 with a = 5^13, seed 271828183.
 */
class NasLcg
{
  public:
    static constexpr std::uint64_t modulus_bits = 46;
    static constexpr std::uint64_t modulus_mask =
        (std::uint64_t{1} << modulus_bits) - 1;
    static constexpr std::uint64_t multiplier = 1220703125ull; // 5^13
    static constexpr std::uint64_t default_seed = 271828183ull;

    explicit NasLcg(std::uint64_t seed = default_seed) : x(seed) {}

    /** Advance one step and return the new raw state. */
    std::uint64_t
    next()
    {
        x = mulmod(multiplier, x);
        return x;
    }

    /** @return uniform double in (0, 1) per the NAS definition. */
    double
    next_double()
    {
        return static_cast<double>(next()) * 0x1.0p-46;
    }

    /**
     * Jump ahead n steps in O(log n) — this is what lets each EP cell
     * generate its own disjoint slice of the 2^28 number stream.
     */
    void
    skip(std::uint64_t n)
    {
        std::uint64_t a = multiplier;
        while (n) {
            if (n & 1)
                x = mulmod(a, x);
            a = mulmod(a, a);
            n >>= 1;
        }
    }

    /** @return current raw state. */
    std::uint64_t state() const { return x; }

  private:
    static std::uint64_t
    mulmod(std::uint64_t a, std::uint64_t b)
    {
        // 46-bit modulus: 128-bit product then mask.
        return (static_cast<unsigned __int128>(a) * b) & modulus_mask;
    }

    std::uint64_t x;
};

} // namespace ap

#endif // AP_BASE_RANDOM_HH
