/**
 * @file
 * Small string helpers used by the MLSim parameter/trace parsers.
 */

#ifndef AP_BASE_STRINGS_HH
#define AP_BASE_STRINGS_HH

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ap
{

/** Strip leading and trailing ASCII whitespace. */
std::string_view trim(std::string_view s);

/** Split on a delimiter character; empty fields are kept. */
std::vector<std::string> split(std::string_view s, char delim);

/** Split on runs of whitespace; empty fields are dropped. */
std::vector<std::string> split_ws(std::string_view s);

/** Parse a double; nullopt on any trailing garbage. */
std::optional<double> parse_double(std::string_view s);

/** Parse a signed 64-bit integer; nullopt on any trailing garbage. */
std::optional<std::int64_t> parse_int(std::string_view s);

/** True when @p s starts with @p prefix. */
bool starts_with(std::string_view s, std::string_view prefix);

/** Lower-case an ASCII string. */
std::string to_lower(std::string_view s);

} // namespace ap

#endif // AP_BASE_STRINGS_HH
