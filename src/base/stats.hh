/**
 * @file
 * Lightweight statistics primitives.
 *
 * MLSim reports counts, means and distributions of message sizes and
 * communication distances (Section 5: "MLSim can calculate such
 * statistics as user time, idle time, communication overhead time,
 * transferred message size, communication distance, and the number of
 * communication events"). These accumulators are the building blocks.
 */

#ifndef AP_BASE_STATS_HH
#define AP_BASE_STATS_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ap
{

/** Scalar accumulator: count, sum, min, max, mean. */
class Accumulator
{
  public:
    /** Record one sample. */
    void
    sample(double v)
    {
        if (n == 0) {
            lo = v;
            hi = v;
        } else {
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
        total += v;
        ++n;
    }

    /** Number of samples recorded. */
    std::uint64_t count() const { return n; }
    /** Sum of all samples. */
    double sum() const { return total; }
    /** Smallest sample (0 when empty). */
    double min() const { return n ? lo : 0.0; }
    /** Largest sample (0 when empty). */
    double max() const { return n ? hi : 0.0; }

    /** Arithmetic mean (0 when empty). */
    double
    mean() const
    {
        return n ? total / static_cast<double>(n) : 0.0;
    }

    /** Merge another accumulator into this one. */
    void
    merge(const Accumulator &o)
    {
        if (o.n == 0)
            return;
        if (n == 0) {
            *this = o;
            return;
        }
        lo = std::min(lo, o.lo);
        hi = std::max(hi, o.hi);
        total += o.total;
        n += o.n;
    }

    /** Discard all samples. */
    void
    reset()
    {
        n = 0;
        total = 0.0;
        lo = 0.0;
        hi = 0.0;
    }

  private:
    std::uint64_t n = 0;
    double total = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

/** Power-of-two bucketed histogram for sizes/distances. */
class Histogram
{
  public:
    /** Record one non-negative sample. */
    void
    sample(std::uint64_t v)
    {
        acc.sample(static_cast<double>(v));
        ++buckets[bucket_of(v)];
    }

    /** The underlying scalar accumulator. */
    const Accumulator &scalar() const { return acc; }

    /** Bucket index -> count map; bucket b covers [2^(b-1), 2^b). */
    const std::map<int, std::uint64_t> &data() const { return buckets; }

    /** Merge another histogram into this one. */
    void
    merge(const Histogram &o)
    {
        acc.merge(o.acc);
        for (const auto &[b, c] : o.buckets)
            buckets[b] += c;
    }

    /** Bucket index for a value (0 -> bucket 0, else floor(log2)+1). */
    static int
    bucket_of(std::uint64_t v)
    {
        int b = 0;
        while (v) {
            v >>= 1;
            ++b;
        }
        return b;
    }

  private:
    Accumulator acc;
    std::map<int, std::uint64_t> buckets;
};

} // namespace ap

#endif // AP_BASE_STATS_HH
