#include "serve/job.hh"

#include <algorithm>
#include <cmath>

#include "base/random.hh"

namespace ap::serve
{

const char *
kind_name(JobKind k)
{
    switch (k) {
    case JobKind::matmul:
        return "matmul";
    case JobKind::cg:
        return "cg";
    case JobKind::ft:
        return "ft";
    case JobKind::scg:
        return "scg";
    case JobKind::tomcatv:
        return "tomcatv";
    case JobKind::gen:
        return "gen";
    }
    return "?";
}

const char *
deadline_name(DeadlineClass c)
{
    switch (c) {
    case DeadlineClass::urgent:
        return "urgent";
    case DeadlineClass::normal:
        return "normal";
    case DeadlineClass::batch:
        return "batch";
    }
    return "?";
}

std::vector<JobSpec>
generate_stream(const TrafficConfig &cfg)
{
    Random rng(cfg.seed);
    // Shape menu, clipped to the torus; 1x1 is allowed (pure
    // compute), larger shapes stress the partitioner.
    static constexpr int shapes[][2] = {
        {1, 1}, {1, 2}, {2, 2}, {2, 2}, {2, 4}, {4, 4},
    };
    constexpr std::size_t nShapes =
        sizeof(shapes) / sizeof(shapes[0]);

    std::vector<JobSpec> out;
    out.reserve(static_cast<std::size_t>(cfg.jobs));
    double clock = cfg.firstArrivalUs;
    for (int i = 0; i < cfg.jobs; ++i) {
        JobSpec s;
        s.id = i;
        s.tenant = static_cast<int>(
            rng.below(static_cast<std::uint64_t>(
                std::max(1, cfg.tenants))));
        s.kind = static_cast<JobKind>(rng.below(6));
        const int *sh = shapes[rng.below(nShapes)];
        s.pw = std::min(sh[0], std::max(1, cfg.maxW));
        s.ph = std::min(sh[1], std::max(1, cfg.maxH));
        s.iters = 2 + static_cast<int>(rng.below(5));
        s.bytes = 256u << rng.below(3);
        s.computeUs = 20.0 + static_cast<double>(rng.below(60));
        std::uint64_t dl = rng.below(10);
        s.deadline = dl < 2   ? DeadlineClass::urgent
                     : dl < 7 ? DeadlineClass::normal
                              : DeadlineClass::batch;
        s.retryBudget = 1 + static_cast<int>(rng.below(2));
        s.seed = rng.next();
        // Open-loop exponential interarrival.
        double u = rng.uniform();
        clock += -std::log(1.0 - u) * cfg.meanArrivalUs;
        s.arrivalUs = clock;
        out.push_back(s);
    }
    return out;
}

} // namespace ap::serve
