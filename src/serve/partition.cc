#include "serve/partition.hh"

#include "base/logging.hh"

namespace ap::serve
{

Partitioner::Partitioner(int torusW, int torusH)
    : gridW(torusW), gridH(torusH),
      grid(static_cast<std::size_t>(torusW * torusH), CellUse::free)
{
    if (torusW <= 0 || torusH <= 0)
        fatal("partitioner wants a positive torus, got %dx%d", torusW,
              torusH);
}

Partitioner::CellUse &
Partitioner::at(int x, int y)
{
    return grid[static_cast<std::size_t>(y * gridW + x)];
}

bool
Partitioner::fits_at(int x0, int y0, int w, int h) const
{
    for (int y = y0; y < y0 + h; ++y)
        for (int x = x0; x < x0 + w; ++x)
            if (grid[static_cast<std::size_t>(y * gridW + x)] !=
                CellUse::free)
                return false;
    return true;
}

std::optional<Placement>
Partitioner::try_shape(int w, int h)
{
    if (w > gridW || h > gridH)
        return std::nullopt;
    for (int y0 = 0; y0 + h <= gridH; ++y0) {
        for (int x0 = 0; x0 + w <= gridW; ++x0) {
            if (!fits_at(x0, y0, w, h))
                continue;
            Placement p;
            p.x0 = x0;
            p.y0 = y0;
            p.w = w;
            p.h = h;
            p.cells.reserve(static_cast<std::size_t>(w * h));
            for (int y = y0; y < y0 + h; ++y)
                for (int x = x0; x < x0 + w; ++x) {
                    at(x, y) = CellUse::busy;
                    p.cells.push_back(y * gridW + x);
                }
            return p;
        }
    }
    return std::nullopt;
}

std::optional<Placement>
Partitioner::allocate(int w, int h)
{
    if (w <= 0 || h <= 0)
        return std::nullopt;
    if (auto p = try_shape(w, h))
        return p;
    if (w != h)
        if (auto p = try_shape(h, w))
            return p;
    return std::nullopt;
}

void
Partitioner::release(const Placement &p)
{
    for (CellId c : p.cells) {
        CellUse &u = grid[static_cast<std::size_t>(c)];
        if (u == CellUse::busy)
            u = CellUse::free;
    }
}

void
Partitioner::quarantine(const Placement &p)
{
    for (CellId c : p.cells) {
        CellUse &u = grid[static_cast<std::size_t>(c)];
        if (u == CellUse::busy)
            u = CellUse::quarantined;
    }
}

void
Partitioner::mark_dead(CellId cell)
{
    if (cell < 0 || cell >= gridW * gridH)
        return;
    grid[static_cast<std::size_t>(cell)] = CellUse::dead;
}

bool
Partitioner::could_ever_fit(int w, int h) const
{
    if (w <= 0 || h <= 0)
        return false;
    return (w <= gridW && h <= gridH) || (h <= gridW && w <= gridH);
}

std::vector<CellId>
Partitioner::busy_list() const
{
    std::vector<CellId> out;
    for (std::size_t i = 0; i < grid.size(); ++i)
        if (grid[i] == CellUse::busy)
            out.push_back(static_cast<CellId>(i));
    return out;
}

int
Partitioner::count(CellUse u) const
{
    int n = 0;
    for (CellUse c : grid)
        if (c == u)
            ++n;
    return n;
}

} // namespace ap::serve
