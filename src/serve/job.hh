/**
 * @file
 * Job descriptions for the multi-tenant serving layer.
 *
 * The paper's machine ran one SPMD program end to end; the serving
 * layer (ROADMAP item 2) treats the same machine as a cluster: many
 * small gang-scheduled jobs, each a partition-scoped SPMD program
 * drawn from the paper's workload families (MatMul, CG, FT, SCG,
 * tomcatv) plus synthetic PUT/GET traffic. A JobSpec is the request;
 * everything the scheduler learns about its fate lives in the
 * JobRecord (serve/scheduler.hh).
 */

#ifndef AP_SERVE_JOB_HH
#define AP_SERVE_JOB_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"

namespace ap::serve
{

/** Which SPMD body a job runs (serve/workload.hh). */
enum class JobKind : std::uint8_t
{
    matmul,  ///< row/column ring shifts (Cannon-style)
    cg,      ///< 4-neighbor halo + two scalar reductions
    ft,      ///< all-to-all transpose within the partition
    scg,     ///< ring exchange + three scalar reductions
    tomcatv, ///< vertical halos + max reduction
    gen,     ///< seeded synthetic PUT/GET permutation traffic
};

/** Service-level deadline class (per-attempt, from admission). */
enum class DeadlineClass : std::uint8_t
{
    urgent, ///< short deadline; cancelled hard when exceeded
    normal, ///< generous deadline
    batch,  ///< no deadline
};

const char *kind_name(JobKind k);
const char *deadline_name(DeadlineClass c);

/** One job request as submitted by a tenant. */
struct JobSpec
{
    int id = 0;     ///< stream-unique job id (stats subtree key)
    int tenant = 0; ///< owning tenant (fairness accounting)
    JobKind kind = JobKind::gen;
    /** Requested partition shape (cells), placed as pw x ph or
     *  ph x pw on the torus. */
    int pw = 2;
    int ph = 2;
    int iters = 4;                ///< iteration count of the body
    std::uint32_t bytes = 1024;   ///< payload per transfer
    double computeUs = 40.0;      ///< modelled compute per iteration
    DeadlineClass deadline = DeadlineClass::normal;
    /** Reschedule attempts allowed after the first (0 = fail on the
     *  first lost attempt). */
    int retryBudget = 2;
    double arrivalUs = 0.0;       ///< open-loop arrival time
    std::uint64_t seed = 0;       ///< per-job workload seed

    int cells() const { return pw * ph; }
};

/** Open-loop traffic generator configuration (serve/traffic.cc). */
struct TrafficConfig
{
    int jobs = 32;
    std::uint64_t seed = 1;
    /** Mean of the exponential interarrival distribution. */
    double meanArrivalUs = 250.0;
    double firstArrivalUs = 20.0;
    int tenants = 4;
    /** Partition shapes are clipped to the torus dimensions. */
    int maxW = 4;
    int maxH = 4;
};

/**
 * Generate a deterministic open-loop job stream: mixed kinds, sizes,
 * deadline classes and retry budgets, exponential interarrival times.
 * Sorted by arrivalUs; ids are 0..jobs-1.
 */
std::vector<JobSpec> generate_stream(const TrafficConfig &cfg);

} // namespace ap::serve

#endif // AP_SERVE_JOB_HH
