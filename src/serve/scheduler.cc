#include "serve/scheduler.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "serve/workload.hh"

namespace ap::serve
{

const char *
state_name(JobState s)
{
    switch (s) {
    case JobState::queued:
        return "queued";
    case JobState::running:
        return "running";
    case JobState::completed:
        return "completed";
    case JobState::failed:
        return "failed";
    case JobState::shed:
        return "shed";
    case JobState::deadline_cancelled:
        return "deadline_cancelled";
    case JobState::starved:
        return "starved";
    }
    return "?";
}

GangScheduler::GangScheduler(hw::Machine &machine, ServeConfig cfg)
    : machine(machine), cfg(cfg),
      parts(machine.topology().width(), machine.topology().height())
{
    machine.set_kill_hook([this](CellId c) { on_kill(c); });
    register_stats();
}

GangScheduler::~GangScheduler()
{
    machine.set_kill_hook(nullptr);
    machine.stats_registry().remove_prefix("serve.");
}

Tick
GangScheduler::dispatch_ticks() const
{
    Tick t = us_to_ticks(cfg.dispatchUs);
    return t > 0 ? t : 1;
}

double
GangScheduler::deadline_us(DeadlineClass c) const
{
    switch (c) {
    case DeadlineClass::urgent:
        return cfg.urgentDeadlineUs;
    case DeadlineClass::normal:
        return cfg.normalDeadlineUs;
    case DeadlineClass::batch:
        return cfg.batchDeadlineUs;
    }
    return 0.0;
}

void
GangScheduler::register_stats()
{
    obs::StatsRegistry &reg = machine.stats_registry();
    reg.add_counter("serve.jobs.submitted", &tot.submitted);
    reg.add_counter("serve.jobs.admitted", &tot.admitted);
    reg.add_counter("serve.jobs.completed", &tot.completed);
    reg.add_counter("serve.jobs.failed", &tot.failedTerminal);
    reg.add_counter("serve.jobs.shed_queue_full", &tot.shedQueueFull);
    reg.add_counter("serve.jobs.shed_too_large", &tot.shedTooLarge);
    reg.add_counter("serve.jobs.starved", &tot.starved);
    reg.add_counter("serve.jobs.deadline_cancelled",
                    &tot.deadlineCancelled);
    reg.add_counter("serve.jobs.retried", &tot.retried);
    reg.add_counter("serve.jobs.requeued", &tot.requeued);
    reg.add_counter("serve.attempts.launched", &tot.attempts);
    reg.add_counter("serve.attempts.killed", &tot.attemptsKilled);
    reg.add_counter("serve.attempts.errored", &tot.attemptsErrored);
    reg.add_counter("serve.partitions.quarantined",
                    &tot.partitionsQuarantined);
    reg.add_gauge("serve.sched.queue_depth", [this] {
        return static_cast<std::uint64_t>(queue.size());
    });
    reg.add_gauge("serve.sched.running", [this] {
        return static_cast<std::uint64_t>(runningCount);
    });
    reg.add_gauge("serve.cells.free", [this] {
        return static_cast<std::uint64_t>(parts.free_cells());
    });
    reg.add_gauge("serve.cells.busy", [this] {
        return static_cast<std::uint64_t>(parts.busy_cells());
    });
    reg.add_gauge("serve.cells.quarantined", [this] {
        return static_cast<std::uint64_t>(parts.quarantined_cells());
    });
    reg.add_gauge("serve.cells.dead", [this] {
        return static_cast<std::uint64_t>(parts.dead_cells());
    });
}

void
GangScheduler::register_job_stats(JobRecord &r)
{
    obs::StatsRegistry &reg = machine.stats_registry();
    std::string p = strprintf("serve.job.%d.", r.spec.id);
    reg.add_counter(p + "attempts", &r.attempts);
    reg.add_counter(p + "retries", &r.retries);
    reg.add_counter(p + "deadline_hits", &r.deadlineHits);
    JobRecord *jr = &r;
    reg.add_gauge(p + "state", [jr] { return jr->stateNum; });
    reg.add_gauge(p + "queued_us", [jr] {
        return static_cast<std::uint64_t>(
            ticks_to_us(jr->queuedTicks));
    });
    reg.add_gauge(p + "service_us", [jr] {
        return static_cast<std::uint64_t>(
            ticks_to_us(jr->serviceTicks));
    });
    reg.add_gauge(p + "latency_us", [jr] {
        if (!jr->terminal() || jr->finishTick < jr->submitTick)
            return std::uint64_t{0};
        return static_cast<std::uint64_t>(
            ticks_to_us(jr->finishTick - jr->submitTick));
    });
}

void
GangScheduler::submit(const JobSpec &spec)
{
    std::lock_guard<std::mutex> lock(mu);
    Tick now = machine.sim().now();
    std::size_t idx = jobRecs.size();
    jobRecs.emplace_back();
    JobRecord &r = jobRecs.back();
    r.spec = spec;
    r.submitTick = now;
    r.enqueueTick = now;
    r.stateNum = static_cast<std::uint64_t>(JobState::queued);
    if (tot.submitted == 0)
        firstSubmitTick = now;
    tot.submitted++;
    register_job_stats(r);

    if (!parts.could_ever_fit(spec.pw, spec.ph)) {
        shed_locked(r, "too_large", false);
        return;
    }
    if (static_cast<int>(queue.size()) >= cfg.queueDepth) {
        shed_locked(r, "queue_full", true);
        return;
    }
    queue.push_back(idx);
    try_admit_locked();
}

void
GangScheduler::shed_locked(JobRecord &r, const char *why,
                           bool queueFull)
{
    r.state = JobState::shed;
    r.stateNum = static_cast<std::uint64_t>(r.state);
    r.finishTick = machine.sim().now();
    lastFinishTick = std::max(lastFinishTick, r.finishTick);
    r.reason = strprintf("shed: %s (depth %zu, inflight %d)", why,
                         queue.size(), runningCount);
    if (queueFull)
        tot.shedQueueFull++;
    else
        tot.shedTooLarge++;
}

void
GangScheduler::schedule_stream(const std::vector<JobSpec> &stream)
{
    Tick disp = dispatch_ticks();
    for (const JobSpec &spec : stream) {
        Tick at = std::max(us_to_ticks(spec.arrivalUs), disp);
        machine.sim().schedule_for(-1, at,
                                   [this, spec] { submit(spec); });
    }
}

void
GangScheduler::try_admit_locked()
{
    auto it = queue.begin();
    while (it != queue.end() && runningCount < cfg.maxInflight) {
        JobRecord &r = jobRecs[*it];
        auto pl = parts.allocate(r.spec.pw, r.spec.ph);
        if (!pl) {
            ++it;
            continue;
        }
        it = queue.erase(it);
        launch_locked(r, std::move(*pl));
    }
}

void
GangScheduler::launch_locked(JobRecord &r, Placement place)
{
    Tick now = machine.sim().now();
    attempts.push_back(std::make_unique<Attempt>());
    Attempt &a = *attempts.back();
    a.job = &r;
    a.gen = ++genCounter;
    a.place = std::move(place);
    a.group = std::make_unique<core::Group>(a.place.cells);
    a.barrierCtx = machine.snet().create_context(a.place.cells);
    a.startTick = now;
    liveAttempts[a.gen] = &a;

    r.attempts++;
    tot.attempts++;
    if (r.attempts == 1) {
        r.firstStartTick = now;
        tot.admitted++;
    }
    r.queuedTicks += now - r.enqueueTick;
    r.state = JobState::running;
    r.stateNum = static_cast<std::uint64_t>(r.state);

    double dl = deadline_us(r.spec.deadline);
    a.deadlineTick =
        dl > 0.0 ? now + dispatch_ticks() + us_to_ticks(dl) : 0;

    a.run.spec = &r.spec;
    a.run.group = a.group.get();
    a.run.pw = a.place.w;
    a.run.ph = a.place.h;
    a.run.deadlineTick = a.deadlineTick;
    a.run.cancel = &a.cancel;

    int n = static_cast<int>(a.place.cells.size());
    a.doneFlags.assign(static_cast<std::size_t>(n), 0);
    a.procs.resize(static_cast<std::size_t>(n));
    a.ctxs.resize(static_cast<std::size_t>(n));
    Attempt *ap = &a;
    for (int i = 0; i < n; ++i) {
        auto idx = static_cast<std::size_t>(i);
        CellId c = a.place.cells[idx];
        a.procs[idx] = std::make_unique<sim::Process>(
            machine.sim(),
            strprintf("job%da%lluc%d", r.spec.id,
                      static_cast<unsigned long long>(r.attempts), c),
            [this, ap, i, c](sim::Process &) {
                // CommError cannot cross the fiber boundary; catch it
                // here, exactly like core::run_spmd does. A failed
                // cell's own demise is not a job error — the doom
                // path already covers its attempt.
                bool ok = false;
                try {
                    ok = run_job(
                        *ap->ctxs[static_cast<std::size_t>(i)],
                        ap->run);
                } catch (const core::CommError &e) {
                    if (!machine.cell_failed(c))
                        note_attempt_error(*ap, e.what());
                }
                attempt_cell_done(*ap, i, ok);
            });
        a.ctxs[idx] = std::make_unique<core::Context>(
            machine, c, *a.procs[idx], a.barrierCtx, nullptr);
        a.procs[idx]->set_affinity(c);
        // The first resume crosses shards: stay clear of the
        // conservative lookahead window.
        a.procs[idx]->start(now + dispatch_ticks());
    }
    runningCount++;

    if (a.deadlineTick != 0)
        machine.sim().schedule_for(
            -1, a.deadlineTick,
            [this, gen = a.gen] { on_deadline(gen); });
}

void
GangScheduler::note_attempt_error(Attempt &a, const std::string &what)
{
    std::lock_guard<std::mutex> lock(mu);
    a.errored = true;
    if (a.firstError.empty())
        a.firstError = what;
}

void
GangScheduler::attempt_cell_done(Attempt &a, int rank, bool ok)
{
    std::lock_guard<std::mutex> lock(mu);
    a.doneFlags[static_cast<std::size_t>(rank)] = 1;
    if (!ok)
        a.stopped = true;
    check_finish_locked(a);
    if (a.finished)
        schedule_reap_locked();
}

void
GangScheduler::check_finish_locked(Attempt &a)
{
    if (a.finished)
        return;
    for (std::size_t i = 0; i < a.place.cells.size(); ++i)
        if (!a.doneFlags[i] && !machine.cell_failed(a.place.cells[i]))
            return;
    finish_attempt_locked(a);
}

void
GangScheduler::finish_attempt_locked(Attempt &a)
{
    a.finished = true;
    runningCount--;
    liveAttempts.erase(a.gen);

    JobRecord &r = *a.job;
    Tick now = machine.sim().now();
    Tick held = now >= a.startTick ? now - a.startTick : 0;
    r.serviceTicks += held;
    r.cellTicks += held * a.place.cells.size();

    bool deadMember = a.doomed;
    for (CellId c : a.place.cells)
        deadMember = deadMember || machine.cell_failed(c);

    const char *outcome = nullptr;
    if (deadMember || a.errored) {
        // A failed gang can leave one-sided traffic and unconsumed
        // ring-buffer records on its cells: retire the partition
        // instead of leaking that state into the next tenant.
        parts.quarantine(a.place);
        tot.partitionsQuarantined++;
        if (deadMember)
            tot.attemptsKilled++;
        if (a.errored)
            tot.attemptsErrored++;
        if (r.attempts <= static_cast<std::uint64_t>(
                              std::max(0, r.spec.retryBudget))) {
            r.retries++;
            tot.retried++;
            r.state = JobState::queued;
            r.stateNum = static_cast<std::uint64_t>(r.state);
            double backoffUs = cfg.retryBaseUs;
            for (std::uint64_t i = 1;
                 i < r.retries && backoffUs < cfg.retryCapUs; ++i)
                backoffUs *= cfg.retryFactor;
            backoffUs = std::min(backoffUs, cfg.retryCapUs);
            Tick delay =
                std::max(us_to_ticks(backoffUs), dispatch_ticks());
            // jobRecs is a deque (stable addresses, no contiguous
            // arithmetic): recover the index by scan.
            std::size_t jobIdx = 0;
            for (std::size_t i = 0; i < jobRecs.size(); ++i)
                if (&jobRecs[i] == &r)
                    jobIdx = i;
            machine.sim().schedule_after_for(
                -1, delay, [this, jobIdx] { requeue(jobIdx); });
            outcome = "retrying";
        } else {
            r.state = JobState::failed;
            r.stateNum = static_cast<std::uint64_t>(r.state);
            r.finishTick = now;
            std::string err = a.firstError.empty()
                                  ? std::string("gang lost a cell")
                                  : a.firstError;
            if (err.size() > 400)
                err.resize(400);
            r.reason = strprintf(
                "retry budget exhausted after %llu attempts: %s",
                static_cast<unsigned long long>(r.attempts),
                err.c_str());
            tot.failedTerminal++;
            outcome = "failed";
        }
    } else if (a.deadlined || a.stopped) {
        parts.release(a.place);
        r.state = JobState::deadline_cancelled;
        r.stateNum = static_cast<std::uint64_t>(r.state);
        r.finishTick = now;
        r.deadlineHits++;
        r.reason = strprintf("deadline exceeded (%s, %.0f us)",
                             deadline_name(r.spec.deadline),
                             deadline_us(r.spec.deadline));
        tot.deadlineCancelled++;
        outcome = "deadline";
    } else {
        parts.release(a.place);
        r.state = JobState::completed;
        r.stateNum = static_cast<std::uint64_t>(r.state);
        r.finishTick = now;
        tot.completed++;
        outcome = "completed";
    }
    if (r.terminal())
        lastFinishTick = std::max(lastFinishTick, r.finishTick);

    if (obs::Tracer *tr = machine.tracer())
        tr->span_at(a.place.cells.front(), "serve",
                    strprintf("job%d:%s a%llu %s", r.spec.id,
                              kind_name(r.spec.kind),
                              static_cast<unsigned long long>(
                                  r.attempts),
                              outcome),
                    a.startTick, now);

    try_admit_locked();
}

void
GangScheduler::requeue(std::size_t jobIdx)
{
    std::lock_guard<std::mutex> lock(mu);
    JobRecord &r = jobRecs[jobIdx];
    if (r.state != JobState::queued)
        return;
    r.enqueueTick = machine.sim().now();
    // Retries bypass depth shedding: the job was admitted once and
    // holds a retry budget; dropping it here would turn one cell
    // failure into silent data loss for an unrelated reason.
    queue.push_back(jobIdx);
    tot.requeued++;
    try_admit_locked();
}

void
GangScheduler::on_deadline(std::uint64_t gen)
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = liveAttempts.find(gen);
    if (it == liveAttempts.end())
        return;
    Attempt &a = *it->second;
    a.deadlined = true;
    a.cancel.store(true, std::memory_order_relaxed);
}

void
GangScheduler::on_kill(CellId cell)
{
    std::lock_guard<std::mutex> lock(mu);
    parts.mark_dead(cell);
    // Doom every running attempt whose placement holds the dead
    // cell: raise its cancel flag (survivors vote out at the next
    // iteration boundary; parked waiters unwind via the degraded
    // S-net release or the watchdog) and re-check completion — the
    // dead cell may have been the only member still running.
    for (auto &[gen, ap] : liveAttempts) {
        (void)gen;
        if (!ap->place.contains(cell))
            continue;
        ap->doomed = true;
        ap->cancel.store(true, std::memory_order_relaxed);
    }
    // check_finish mutates liveAttempts on finish; iterate a copy.
    std::vector<Attempt *> hit;
    for (auto &[gen, ap] : liveAttempts) {
        (void)gen;
        if (ap->place.contains(cell))
            hit.push_back(ap);
    }
    for (Attempt *ap : hit)
        check_finish_locked(*ap);
}

void
GangScheduler::schedule_reap_locked()
{
    if (reapPending)
        return;
    reapPending = true;
    machine.sim().schedule_after_for(-1, dispatch_ticks(), [this] {
        std::lock_guard<std::mutex> lock(mu);
        reapPending = false;
        reap_locked();
    });
}

void
GangScheduler::reap_locked()
{
    // Free finished attempts whose fibers have all returned (a fiber
    // parked forever — e.g. a kill victim with the watchdog off —
    // keeps its attempt alive: Condition keeps raw Process
    // pointers). Fibers carry 256 KB stacks; a long job stream must
    // not accumulate them.
    std::erase_if(attempts, [](const std::unique_ptr<Attempt> &a) {
        if (!a->finished)
            return false;
        for (const auto &p : a->procs)
            if (!p->finished())
                return false;
        return true;
    });
}

void
GangScheduler::finalize()
{
    std::lock_guard<std::mutex> lock(mu);
    Tick now = machine.sim().now();
    for (std::size_t idx : queue) {
        JobRecord &r = jobRecs[idx];
        if (r.state != JobState::queued)
            continue;
        r.state = JobState::starved;
        r.stateNum = static_cast<std::uint64_t>(r.state);
        r.finishTick = now;
        r.queuedTicks += now - r.enqueueTick;
        r.reason = strprintf(
            "starved: no feasible partition (%d free, %d "
            "quarantined, %d dead cells)",
            parts.free_cells(), parts.quarantined_cells(),
            parts.dead_cells());
        tot.starved++;
        // Deliberately not folded into lastFinishTick: a starved job
        // did no work, and the drain point is dominated by idle
        // deadline timers — it would only distort the makespan.
    }
    queue.clear();
    for (auto &[gen, ap] : liveAttempts) {
        (void)gen;
        JobRecord &r = *ap->job;
        warn("serve: attempt %llu of job %d never unwound "
             "(deadlocked gang)",
             static_cast<unsigned long long>(ap->gen), r.spec.id);
        if (!r.terminal()) {
            r.state = JobState::failed;
            r.stateNum = static_cast<std::uint64_t>(r.state);
            r.finishTick = now;
            r.reason = "deadlock: gang never unwound";
            tot.failedTerminal++;
        }
    }
}

bool
GangScheduler::all_terminal() const
{
    std::lock_guard<std::mutex> lock(mu);
    for (const JobRecord &r : jobRecs)
        if (!r.terminal())
            return false;
    return true;
}

double
GangScheduler::tenant_fairness() const
{
    std::map<int, double> perTenant;
    for (const JobRecord &r : jobRecs)
        if (r.state == JobState::completed)
            perTenant[r.spec.tenant] +=
                static_cast<double>(r.cellTicks);
    if (perTenant.empty())
        return 0.0;
    double sum = 0.0, sumSq = 0.0;
    for (const auto &[t, x] : perTenant) {
        (void)t;
        sum += x;
        sumSq += x * x;
    }
    if (sumSq <= 0.0)
        return 0.0;
    double n = static_cast<double>(perTenant.size());
    return (sum * sum) / (n * sumSq);
}

CellId
GangScheduler::pick_busy_cell(std::uint64_t salt) const
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<CellId> busy = parts.busy_list();
    if (busy.empty())
        return -1;
    return busy[static_cast<std::size_t>(salt % busy.size())];
}

double
GangScheduler::utilization() const
{
    if (lastFinishTick <= firstSubmitTick)
        return 0.0;
    double span = static_cast<double>(lastFinishTick -
                                      firstSubmitTick) *
                  machine.size();
    double used = 0.0;
    for (const JobRecord &r : jobRecs)
        used += static_cast<double>(r.cellTicks);
    return span > 0.0 ? used / span : 0.0;
}

std::string
GangScheduler::report() const
{
    std::vector<double> lat;
    for (const JobRecord &r : jobRecs)
        if (r.state == JobState::completed)
            lat.push_back(ticks_to_us(r.finishTick - r.submitTick));
    std::sort(lat.begin(), lat.end());
    double mean = 0.0;
    for (double v : lat)
        mean += v;
    mean = lat.empty() ? 0.0 : mean / static_cast<double>(lat.size());
    double p95 =
        lat.empty()
            ? 0.0
            : lat[std::min(lat.size() - 1,
                           static_cast<std::size_t>(
                               static_cast<double>(lat.size()) *
                               0.95))];
    double makespanUs =
        lastFinishTick > firstSubmitTick
            ? ticks_to_us(lastFinishTick - firstSubmitTick)
            : 0.0;
    double jobsPerSec = makespanUs > 0.0
                            ? static_cast<double>(tot.completed) *
                                  1e6 / makespanUs
                            : 0.0;

    std::string out;
    out += strprintf(
        "serve: %llu jobs — %llu completed, %llu failed, %llu shed "
        "(%llu queue_full, %llu too_large), %llu deadline-cancelled, "
        "%llu starved\n",
        static_cast<unsigned long long>(tot.submitted),
        static_cast<unsigned long long>(tot.completed),
        static_cast<unsigned long long>(tot.failedTerminal),
        static_cast<unsigned long long>(tot.shedQueueFull +
                                        tot.shedTooLarge),
        static_cast<unsigned long long>(tot.shedQueueFull),
        static_cast<unsigned long long>(tot.shedTooLarge),
        static_cast<unsigned long long>(tot.deadlineCancelled),
        static_cast<unsigned long long>(tot.starved));
    out += strprintf(
        "serve: %llu attempts (%llu killed, %llu errored), %llu "
        "retries, %llu partitions quarantined\n",
        static_cast<unsigned long long>(tot.attempts),
        static_cast<unsigned long long>(tot.attemptsKilled),
        static_cast<unsigned long long>(tot.attemptsErrored),
        static_cast<unsigned long long>(tot.retried),
        static_cast<unsigned long long>(tot.partitionsQuarantined));
    out += strprintf(
        "serve: cells %d free / %d busy / %d quarantined / %d dead\n",
        parts.free_cells(), parts.busy_cells(),
        parts.quarantined_cells(), parts.dead_cells());
    out += strprintf(
        "serve: makespan %.0f us, %.1f jobs/s, utilization %.1f%%, "
        "fairness %.3f\n",
        makespanUs, jobsPerSec, utilization() * 100.0,
        tenant_fairness());
    out += strprintf(
        "serve: completed latency mean %.0f us, p95 %.0f us\n", mean,
        p95);
    return out;
}

} // namespace ap::serve
