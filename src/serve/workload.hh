/**
 * @file
 * Partition-scoped SPMD job bodies.
 *
 * Each body is a scaled-down relative of the paper's trace programs,
 * rewritten to stay strictly inside its partition: all PUT/GET
 * traffic targets partition members, barriers go to the attempt's
 * partition-scoped S-net context, and reductions use the software
 * group collectives (allreduce_group) — never the machine-wide
 * commreg/ring paths, which would couple independent tenants.
 *
 * Cooperative cancellation: between iterations every member votes
 * `stop?` through a group max-reduction. The vote is itself a
 * collective, so either the whole gang exits at the same iteration
 * boundary (leaving no in-flight one-sided traffic behind) or nobody
 * does — a split-brain exit cannot strand a member inside an
 * exchange. The vote observes both the scheduler's cancel flag
 * (deadline fired, partition doomed by a cell kill) and the local
 * deadline clock, whichever trips first.
 */

#ifndef AP_SERVE_WORKLOAD_HH
#define AP_SERVE_WORKLOAD_HH

#include <atomic>

#include "core/context.hh"
#include "serve/job.hh"

namespace ap::serve
{

/** Everything one attempt's fibers need to run a job body. */
struct JobRun
{
    const JobSpec *spec = nullptr;
    /** Partition members, sorted — ranks are row-major partition
     *  coordinates. */
    const core::Group *group = nullptr;
    /** Effective partition shape (after placement rotation). */
    int pw = 1;
    int ph = 1;
    /** Absolute deadline tick; 0 = no deadline. */
    Tick deadlineTick = 0;
    /** Set by the scheduler on deadline or partition doom. */
    const std::atomic<bool> *cancel = nullptr;
};

/**
 * Run @p run.spec's body on the calling cell's context.
 * @return true when every iteration completed, false on a
 * cooperative early exit (deadline/cancel vote).
 * Throws core::CommError like any SPMD body when communication
 * fails underneath it.
 */
bool run_job(core::Context &ctx, const JobRun &run);

} // namespace ap::serve

#endif // AP_SERVE_WORKLOAD_HH
