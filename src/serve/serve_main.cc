/**
 * @file
 * ap_serve: the multi-tenant job-service driver.
 *
 * Treats the machine as a cluster: generates a deterministic
 * open-loop stream of mixed SPMD jobs (serve/traffic.cc), gang-
 * schedules them onto rectangular torus partitions with admission
 * control and backpressure (serve/scheduler.hh), and reports
 * throughput, latency, utilization and per-tenant fairness.
 *
 * `--drill=kill-cell` runs the fault drill: a seeded plan fail-stops
 * one cell mid-fleet; affected jobs are rescheduled onto fresh
 * partitions (their old partitions quarantined) until their retry
 * budgets are exhausted, and the run fails unless every job reached
 * a terminal state and the reschedule path actually fired.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>

#include "base/logging.hh"
#include "hw/machine.hh"
#include "obs/cli.hh"
#include "serve/job.hh"
#include "serve/scheduler.hh"
#include "sim/fault.hh"

using namespace ap;

namespace
{

void
usage(const char *prog)
{
    std::printf(
        "usage: %s [options]\n"
        "  --cells=N          machine size (default 16)\n"
        "  --jobs=N           jobs in the open-loop stream "
        "(default 32)\n"
        "  --seed=N           traffic + fault seed (default 1)\n"
        "  --arrival-us=X     mean exponential interarrival "
        "(default 250)\n"
        "  --tenants=N        tenant count (default 4)\n"
        "  --queue-depth=N    admission queue bound (default 64)\n"
        "  --max-inflight=N   concurrent partitions (default 8)\n"
        "  --watchdog-us=X    flag-wait watchdog (default 3000;\n"
        "                     the unwind path for killed gangs)\n"
        "  --drill=kill-cell  fault drill: kill one cell mid-fleet,\n"
        "                     require reschedules + terminal states\n"
        "  --kill=CELL@US     explicit fail-stop (repeatable)\n"
        "  --threads=N        event-kernel worker threads\n"
        "  --deterministic    byte-identical sharded execution\n"
        "  --reliable         reliable-delivery layer on\n"
        "  --jobs-table       print the per-job outcome table\n"
        "  --report           print the machine report too\n"
        "  --stats-out=FILE   write the stats registry as JSON\n"
        "  --trace-out=FILE   write a Chrome trace_event timeline\n"
        "  --timeline-out=FILE  write the perf-timeline JSON\n"
        "  --debug-flags=A,B  narrate categories to stderr\n",
        prog);
}

} // namespace

int
main(int argc, char **argv)
{
    int cells = 16;
    int threads = 1;
    bool deterministic = false;
    bool reliable = false;
    bool jobsTable = false;
    bool machineReport = false;
    bool drill = false;
    std::uint64_t seed = 1;
    double watchdogUs = 3000.0;
    serve::TrafficConfig traffic;
    serve::ServeConfig scfg;
    std::vector<sim::FaultPlan::CellKill> kills;
    obs::ObsOptions obsOpt;

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (obs::consume_obs_arg(a, obsOpt)) {
            continue;
        } else if (std::strncmp(a, "--cells=", 8) == 0) {
            cells = std::atoi(a + 8);
        } else if (std::strncmp(a, "--jobs=", 7) == 0) {
            traffic.jobs = std::atoi(a + 7);
        } else if (std::strncmp(a, "--seed=", 7) == 0) {
            seed = std::strtoull(a + 7, nullptr, 10);
        } else if (std::strncmp(a, "--arrival-us=", 13) == 0) {
            traffic.meanArrivalUs = std::atof(a + 13);
        } else if (std::strncmp(a, "--tenants=", 10) == 0) {
            traffic.tenants = std::atoi(a + 10);
        } else if (std::strncmp(a, "--queue-depth=", 14) == 0) {
            scfg.queueDepth = std::atoi(a + 14);
        } else if (std::strncmp(a, "--max-inflight=", 15) == 0) {
            scfg.maxInflight = std::atoi(a + 15);
        } else if (std::strncmp(a, "--watchdog-us=", 14) == 0) {
            watchdogUs = std::atof(a + 14);
        } else if (std::strncmp(a, "--drill=", 8) == 0) {
            if (std::strcmp(a + 8, "kill-cell") != 0)
                fatal("unknown drill '%s' (only kill-cell)", a + 8);
            drill = true;
        } else if (std::strncmp(a, "--kill=", 7) == 0) {
            int cell = 0;
            double us = 0.0;
            if (std::sscanf(a + 7, "%d@%lf", &cell, &us) != 2)
                fatal("--kill wants CELL@US, got '%s'", a);
            kills.push_back({cell, us});
        } else if (std::strncmp(a, "--threads=", 10) == 0) {
            threads = std::atoi(a + 10);
        } else if (std::strcmp(a, "--deterministic") == 0) {
            deterministic = true;
        } else if (std::strcmp(a, "--reliable") == 0) {
            reliable = true;
        } else if (std::strcmp(a, "--jobs-table") == 0) {
            jobsTable = true;
        } else if (std::strcmp(a, "--report") == 0) {
            machineReport = true;
        } else if (std::strcmp(a, "-h") == 0 ||
                   std::strcmp(a, "--help") == 0) {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            fatal("unknown argument '%s'", a);
        }
    }

    traffic.seed = seed;

    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(cells);
    cfg.threads = threads;
    cfg.deterministic = deterministic;
    cfg.reliableNet = reliable;
    // The watchdog is the serving layer's unwind path: a gang member
    // parked on a dead peer's flag must come back as a CommError so
    // the job can be rescheduled, not hang the fleet.
    cfg.retry.watchdogUs = watchdogUs;

    for (const auto &k : kills)
        cfg.faults.kills.push_back(k);

    hw::Machine machine(cfg);
    if (!obsOpt.traceOut.empty())
        machine.enable_tracing();
    if (obsOpt.timeline_enabled())
        machine.enable_timeline(obsOpt.timelinePeriodUs);

    traffic.maxW = machine.topology().width();
    traffic.maxH = machine.topology().height();

    serve::GangScheduler sched(machine, scfg);
    std::vector<serve::JobSpec> stream =
        serve::generate_stream(traffic);
    sched.schedule_stream(stream);

    if (drill) {
        // Seeded and deterministic, but aimed, not blind: once the
        // fleet is warm (about a third into the expected stream) the
        // drill kills a seed-chosen cell that a running gang actually
        // holds, retrying shortly if that instant happens to be idle
        // — a fixed cell-and-time pick can miss every gang and prove
        // nothing.
        double at = traffic.firstArrivalUs +
                    traffic.meanArrivalUs *
                        static_cast<double>(traffic.jobs) * 0.35;
        auto triesLeft = std::make_shared<int>(400);
        auto fire = std::make_shared<std::function<void()>>();
        // The retry event holds a weak reference to the closure —
        // capturing `fire` itself would be a shared_ptr cycle (the
        // function owning itself) that never frees. The strong ref
        // below outlives run_to_completion(), so lock() always
        // succeeds while events can still fire.
        std::weak_ptr<std::function<void()>> weakFire = fire;
        *fire = [&machine, &sched, seed, triesLeft, weakFire] {
            CellId victim = sched.pick_busy_cell(seed);
            if (victim < 0) {
                auto f = weakFire.lock();
                if (f && --*triesLeft > 0)
                    machine.sim().schedule_after_for(
                        -1, us_to_ticks(100.0), *f);
                return;
            }
            std::printf("drill: kill-cell %d at t=%.0f us "
                        "(seed %llu)\n",
                        victim, ticks_to_us(machine.sim().now()),
                        static_cast<unsigned long long>(seed));
            // Cross-shard hop: fail the cell on its own shard, clear
            // of the sharded kernel's lookahead window.
            machine.sim().schedule_after_for(
                victim, us_to_ticks(5.0),
                [&machine, victim] { machine.fail_cell(victim); });
        };
        machine.sim().schedule_for(-1, us_to_ticks(at), *fire);
    }

    machine.run_to_completion();
    sched.finalize();

    std::fputs(sched.report().c_str(), stdout);

    if (jobsTable) {
        std::printf("%-5s %-8s %-7s %-5s %-9s %-19s %s\n", "job",
                    "kind", "shape", "tries", "tenant",
                    "state", "reason");
        for (const serve::JobRecord &r : sched.jobs())
            std::printf("%-5d %-8s %dx%d   %-5llu t%-8d %-19s %s\n",
                        r.spec.id, serve::kind_name(r.spec.kind),
                        r.spec.pw, r.spec.ph,
                        static_cast<unsigned long long>(r.attempts),
                        r.spec.tenant, serve::state_name(r.state),
                        r.reason.c_str());
    }
    if (machineReport)
        std::fputs(machine.report().c_str(), stdout);

    if (!obsOpt.statsOut.empty() &&
        !machine.dump_stats(obsOpt.statsOut))
        fatal("cannot write %s", obsOpt.statsOut.c_str());
    if (!obsOpt.traceOut.empty() &&
        !machine.write_trace(obsOpt.traceOut))
        fatal("cannot write %s", obsOpt.traceOut.c_str());
    if (!obsOpt.timelineOut.empty() &&
        !machine.write_timeline(obsOpt.timelineOut))
        fatal("cannot write %s", obsOpt.timelineOut.c_str());
    if (!obsOpt.timelineCsv.empty() &&
        !machine.write_timeline_csv(obsOpt.timelineCsv))
        fatal("cannot write %s", obsOpt.timelineCsv.c_str());

    bool ok = sched.all_terminal();
    if (drill) {
        const serve::ServeTotals &t = sched.totals();
        bool drillOk = ok && t.attemptsKilled > 0 &&
                       t.partitionsQuarantined > 0 &&
                       (t.retried > 0 || t.failedTerminal > 0);
        std::printf("drill: %s (killed attempts %llu, retries %llu, "
                    "quarantined partitions %llu, all terminal %s)\n",
                    drillOk ? "OK" : "FAIL",
                    static_cast<unsigned long long>(t.attemptsKilled),
                    static_cast<unsigned long long>(t.retried),
                    static_cast<unsigned long long>(
                        t.partitionsQuarantined),
                    ok ? "yes" : "no");
        return drillOk ? 0 : 1;
    }
    if (!ok) {
        std::printf("serve: FAIL — some jobs never reached a "
                    "terminal state\n");
        return 1;
    }
    return 0;
}
