/**
 * @file
 * Rectangular torus partitioner for the serving layer.
 *
 * Jobs are gang-scheduled onto axis-aligned rectangles of cells
 * carved out of the machine's torus, the classic mesh-partitioning
 * model (and the natural one here: the workloads' halo/ring patterns
 * keep their traffic inside the rectangle). The partitioner tracks a
 * per-cell occupancy grid with four states:
 *
 *   free        — allocatable
 *   busy        — held by a running attempt
 *   quarantined — released by a *failed* attempt; never reused. A
 *                 failed gang can leave in-flight one-sided traffic
 *                 and unconsumed ring-buffer records behind, so its
 *                 cells are permanently retired instead of handed to
 *                 the next tenant (robustness over utilization).
 *   dead        — fail-stopped by the fault plan
 *
 * Allocation is first-fit in row-major anchor order, trying the
 * requested w x h orientation first and the transpose second, so a
 * given sequence of requests places deterministically.
 */

#ifndef AP_SERVE_PARTITION_HH
#define AP_SERVE_PARTITION_HH

#include <optional>
#include <vector>

#include "base/types.hh"

namespace ap::serve
{

/** One allocated rectangle (cells listed in row-major order). */
struct Placement
{
    int x0 = 0;
    int y0 = 0;
    int w = 0;
    int h = 0;
    std::vector<CellId> cells;

    bool
    contains(CellId c) const
    {
        for (CellId m : cells)
            if (m == c)
                return true;
        return false;
    }
};

/** Occupancy grid + first-fit rectangle allocator. */
class Partitioner
{
  public:
    Partitioner(int torusW, int torusH);

    /**
     * Allocate a w x h rectangle of free cells (tries h x w when the
     * first orientation does not fit). std::nullopt when nothing
     * fits right now.
     */
    std::optional<Placement> allocate(int w, int h);

    /** Return a placement's busy cells to the free pool. */
    void release(const Placement &p);

    /**
     * Retire a failed placement: every non-dead member cell goes to
     * quarantined and is never allocated again.
     */
    void quarantine(const Placement &p);

    /** Fail-stop @p cell (any prior state). */
    void mark_dead(CellId cell);

    /** Static shape check: could w x h (either orientation) ever fit
     *  an empty grid of this torus? */
    bool could_ever_fit(int w, int h) const;

    int width() const { return gridW; }
    int height() const { return gridH; }
    int free_cells() const { return count(CellUse::free); }
    int busy_cells() const { return count(CellUse::busy); }
    int quarantined_cells() const
    {
        return count(CellUse::quarantined);
    }
    int dead_cells() const { return count(CellUse::dead); }

    /** Cell ids currently held by running attempts, ascending. */
    std::vector<CellId> busy_list() const;

  private:
    enum class CellUse : std::uint8_t
    {
        free,
        busy,
        quarantined,
        dead,
    };

    CellUse &at(int x, int y);
    bool fits_at(int x0, int y0, int w, int h) const;
    std::optional<Placement> try_shape(int w, int h);
    int count(CellUse u) const;

    int gridW;
    int gridH;
    std::vector<CellUse> grid; ///< row-major [y * gridW + x]
};

} // namespace ap::serve

#endif // AP_SERVE_PARTITION_HH
