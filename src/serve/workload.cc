#include "serve/workload.hh"

#include <cstdint>

#include "base/logging.hh"

namespace ap::serve
{

namespace
{

/** splitmix-style hash for deterministic per-(job,iter,rank) draws. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * Gang-wide stop vote (group max-reduction): true when any member
 * wants out. All members call this at the same iteration boundary.
 */
bool
stop_vote(core::Context &ctx, const JobRun &r)
{
    bool over =
        (r.cancel && r.cancel->load(std::memory_order_relaxed)) ||
        (r.deadlineTick != 0 && ctx.now() >= r.deadlineTick);
    double agreed = ctx.allreduce_group(*r.group, over ? 1.0 : 0.0,
                                        core::ReduceOp::max);
    return agreed > 0.0;
}

void
iter_compute(core::Context &ctx, const JobRun &r)
{
    ctx.compute_us(r.spec->computeUs);
}

/** Row/column ring shifts: the Cannon-style MatMul skeleton. */
bool
body_matmul(core::Context &ctx, const JobRun &r)
{
    const JobSpec &s = *r.spec;
    int me = r.group->rank_of(ctx.id());
    int rx = me % r.pw;
    int ry = me / r.pw;
    std::uint32_t b = s.bytes;

    Addr src = ctx.alloc(b);
    Addr rowBuf = ctx.alloc(b);
    Addr colBuf = ctx.alloc(b);
    Addr rowFlag = ctx.alloc_flag();
    Addr colFlag = ctx.alloc_flag();

    CellId right = r.group->at(ry * r.pw + (rx + 1) % r.pw);
    CellId down = r.group->at(((ry + 1) % r.ph) * r.pw + rx);

    for (int it = 0; it < s.iters; ++it) {
        auto t = static_cast<std::uint32_t>(it + 1);
        if (r.pw > 1)
            ctx.put(right, rowBuf, src, b, no_flag, rowFlag);
        if (r.ph > 1)
            ctx.put(down, colBuf, src, b, no_flag, colFlag);
        if (r.pw > 1)
            ctx.wait_flag(rowFlag, t);
        if (r.ph > 1)
            ctx.wait_flag(colFlag, t);
        iter_compute(ctx, r);
        if (stop_vote(ctx, r))
            return false;
    }
    ctx.barrier();
    return true;
}

/** 4-neighbor halo exchange + two scalar reductions. */
bool
body_cg(core::Context &ctx, const JobRun &r)
{
    const JobSpec &s = *r.spec;
    int me = r.group->rank_of(ctx.id());
    int rx = me % r.pw;
    int ry = me / r.pw;
    std::uint32_t b = s.bytes;

    Addr src = ctx.alloc(b);
    Addr halo = ctx.alloc(b);
    Addr haloFlag = ctx.alloc_flag();

    CellId left = r.group->at(ry * r.pw + (rx + r.pw - 1) % r.pw);
    CellId right = r.group->at(ry * r.pw + (rx + 1) % r.pw);
    CellId up = r.group->at(((ry + r.ph - 1) % r.ph) * r.pw + rx);
    CellId down = r.group->at(((ry + 1) % r.ph) * r.pw + rx);
    std::uint32_t perIter = (r.pw > 1 ? 2u : 0u) +
                            (r.ph > 1 ? 2u : 0u);

    double rho = 1.0;
    for (int it = 0; it < s.iters; ++it) {
        if (r.pw > 1) {
            ctx.put(left, halo, src, b, no_flag, haloFlag);
            ctx.put(right, halo, src, b, no_flag, haloFlag);
        }
        if (r.ph > 1) {
            ctx.put(up, halo, src, b, no_flag, haloFlag);
            ctx.put(down, halo, src, b, no_flag, haloFlag);
        }
        if (perIter > 0)
            ctx.wait_flag(haloFlag,
                          static_cast<std::uint32_t>(it + 1) *
                              perIter);
        rho = ctx.allreduce_group(
            *r.group, rho + static_cast<double>(me + it),
            core::ReduceOp::sum);
        iter_compute(ctx, r);
        ctx.allreduce_group(*r.group, rho, core::ReduceOp::max);
        if (stop_vote(ctx, r))
            return false;
    }
    ctx.barrier();
    return true;
}

/** All-to-all transpose within the partition (FT skeleton). */
bool
body_ft(core::Context &ctx, const JobRun &r)
{
    const JobSpec &s = *r.spec;
    int p = r.group->size();
    int me = r.group->rank_of(ctx.id());
    std::uint32_t b = s.bytes;

    Addr src = ctx.alloc(b);
    Addr slots = ctx.alloc(static_cast<std::size_t>(p) * b);
    Addr aaFlag = ctx.alloc_flag();

    for (int it = 0; it < s.iters; ++it) {
        for (int k = 1; k < p; ++k) {
            CellId dst = r.group->at((me + k) % p);
            ctx.put(dst,
                    slots + static_cast<Addr>(me) *
                                static_cast<Addr>(b),
                    src, b, no_flag, aaFlag);
        }
        if (p > 1)
            ctx.wait_flag(aaFlag,
                          static_cast<std::uint32_t>(it + 1) *
                              static_cast<std::uint32_t>(p - 1));
        iter_compute(ctx, r);
        if (stop_vote(ctx, r))
            return false;
    }
    ctx.barrier();
    return true;
}

/** Ring exchange + three scalar reductions (SCG skeleton). */
bool
body_scg(core::Context &ctx, const JobRun &r)
{
    const JobSpec &s = *r.spec;
    int p = r.group->size();
    int me = r.group->rank_of(ctx.id());
    std::uint32_t b = s.bytes;

    Addr src = ctx.alloc(b);
    Addr ring = ctx.alloc(b);
    Addr ringFlag = ctx.alloc_flag();
    CellId next = r.group->at((me + 1) % p);

    for (int it = 0; it < s.iters; ++it) {
        if (p > 1) {
            ctx.put(next, ring, src, b, no_flag, ringFlag);
            ctx.wait_flag(ringFlag,
                          static_cast<std::uint32_t>(it + 1));
        }
        double v = static_cast<double>(mix(s.seed + static_cast<
                                           std::uint64_t>(it)) %
                                       1024);
        ctx.allreduce_group(*r.group, v, core::ReduceOp::sum);
        ctx.allreduce_group(*r.group, v, core::ReduceOp::min);
        ctx.allreduce_group(*r.group, v, core::ReduceOp::max);
        iter_compute(ctx, r);
        if (stop_vote(ctx, r))
            return false;
    }
    ctx.barrier();
    return true;
}

/** Vertical halos + max residual reduction (tomcatv skeleton). */
bool
body_tomcatv(core::Context &ctx, const JobRun &r)
{
    const JobSpec &s = *r.spec;
    int me = r.group->rank_of(ctx.id());
    int rx = me % r.pw;
    int ry = me / r.pw;
    std::uint32_t b = s.bytes;

    Addr src = ctx.alloc(b);
    Addr halo = ctx.alloc(b);
    Addr haloFlag = ctx.alloc_flag();
    CellId up = r.group->at(((ry + r.ph - 1) % r.ph) * r.pw + rx);
    CellId down = r.group->at(((ry + 1) % r.ph) * r.pw + rx);

    for (int it = 0; it < s.iters; ++it) {
        if (r.ph > 1) {
            ctx.put(up, halo, src, b, no_flag, haloFlag);
            ctx.put(down, halo, src, b, no_flag, haloFlag);
            ctx.wait_flag(haloFlag,
                          static_cast<std::uint32_t>(it + 1) * 2u);
        }
        iter_compute(ctx, r);
        ctx.allreduce_group(*r.group,
                            1.0 / static_cast<double>(it + 1),
                            core::ReduceOp::max);
        if (stop_vote(ctx, r))
            return false;
    }
    ctx.barrier();
    return true;
}

/**
 * Synthetic PUT/GET permutation traffic: every iteration each member
 * PUTs to (and GETs from) the member `shift` ranks away, with the
 * shift drawn from the job seed — every member receives exactly one
 * PUT per iteration, so the completion flags stay cumulative.
 */
bool
body_gen(core::Context &ctx, const JobRun &r)
{
    const JobSpec &s = *r.spec;
    int p = r.group->size();
    int me = r.group->rank_of(ctx.id());
    std::uint32_t b = s.bytes;

    Addr src = ctx.alloc(b);
    Addr land = ctx.alloc(b);
    Addr pull = ctx.alloc(b);
    Addr putFlag = ctx.alloc_flag();
    Addr getFlag = ctx.alloc_flag();

    for (int it = 0; it < s.iters; ++it) {
        auto t = static_cast<std::uint32_t>(it + 1);
        if (p > 1) {
            int shift = 1 + static_cast<int>(
                                mix(s.seed +
                                    static_cast<std::uint64_t>(it)) %
                                static_cast<std::uint64_t>(p - 1));
            CellId peer = r.group->at((me + shift) % p);
            ctx.put(peer, land, src, b, no_flag, putFlag);
            ctx.get(peer, src, pull, b, no_flag, getFlag);
            ctx.wait_flag(putFlag, t);
            ctx.wait_flag(getFlag, t);
        }
        iter_compute(ctx, r);
        if (stop_vote(ctx, r))
            return false;
    }
    ctx.barrier();
    return true;
}

} // namespace

bool
run_job(core::Context &ctx, const JobRun &run)
{
    switch (run.spec->kind) {
    case JobKind::matmul:
        return body_matmul(ctx, run);
    case JobKind::cg:
        return body_cg(ctx, run);
    case JobKind::ft:
        return body_ft(ctx, run);
    case JobKind::scg:
        return body_scg(ctx, run);
    case JobKind::tomcatv:
        return body_tomcatv(ctx, run);
    case JobKind::gen:
        return body_gen(ctx, run);
    }
    panic("unknown job kind %d", static_cast<int>(run.spec->kind));
}

} // namespace ap::serve
