/**
 * @file
 * The gang scheduler: admission control, placement, failure-driven
 * rescheduling.
 *
 * One GangScheduler drives one hw::Machine as a cluster. Jobs arrive
 * as events on the simulated clock (schedule_stream() or submit()
 * from inside an event); each admitted job becomes an *attempt*: a
 * gang of per-cell fibers on a freshly allocated torus rectangle,
 * each with its own core::Context whose barrier points at a
 * partition-scoped S-net context, so `ctx.barrier()` synchronizes
 * the gang, not the machine.
 *
 * Robustness model:
 *  - Bounded admission queue: a submit beyond queueDepth is shed
 *    with reason `queue_full`; a shape that cannot fit the torus in
 *    either orientation is shed with `too_large`. maxInflight bounds
 *    concurrent partitions (backpressure on the partitioner).
 *  - Deadlines: urgent/normal jobs get a per-attempt service
 *    deadline from admission; the gang exits cooperatively at the
 *    next iteration vote and the job is reported
 *    `deadline_cancelled` (terminal, partition released clean).
 *  - Failure-driven rescheduling: Machine's kill hook marks every
 *    attempt whose placement intersects the dead cell as doomed and
 *    raises its cancel flag. Survivors unwind via the degraded
 *    collectives / watchdog CommError path; the partition is
 *    quarantined (stale one-sided traffic must never leak into the
 *    next tenant) and the job re-enters the queue after exponential
 *    backoff until its retry budget is exhausted, at which point it
 *    is reported terminal with the first error (postmortem text
 *    attached by the runtime) as its reason.
 *
 * Every job gets a `serve.job.<id>.*` stats subtree and a tracer
 * span per attempt; aggregate counters live under `serve.*`.
 *
 * Threading: all scheduler state is guarded by one mutex — entry
 * points are sim events (shard 0) and fiber completions / kill hooks
 * (any shard). Stats-registry mutation happens only from shard-0
 * events (submit), which the sharded kernel serializes; the registry
 * itself is only walked while the kernel is quiescent.
 */

#ifndef AP_SERVE_SCHEDULER_HH
#define AP_SERVE_SCHEDULER_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/context.hh"
#include "hw/machine.hh"
#include "serve/job.hh"
#include "serve/partition.hh"
#include "serve/workload.hh"
#include "sim/process.hh"

namespace ap::serve
{

/** Scheduler tuning knobs. */
struct ServeConfig
{
    /** Admission-queue bound; submits beyond it are shed. */
    int queueDepth = 64;
    /** Concurrent running attempts (partition backpressure). */
    int maxInflight = 8;
    /**
     * Delay between a scheduling decision and the gang's first
     * resume. Must exceed the sharded kernel's conservative
     * lookahead (about 1 us with default network timings): the
     * scheduler schedules fiber starts across shards.
     */
    double dispatchUs = 5.0;
    /** Exponential retry backoff: base, factor, saturation cap. */
    double retryBaseUs = 200.0;
    double retryFactor = 2.0;
    double retryCapUs = 5000.0;
    /** Per-attempt service deadlines by class (0 = none). */
    double urgentDeadlineUs = 8000.0;
    double normalDeadlineUs = 40000.0;
    double batchDeadlineUs = 0.0;
};

/** Terminal and transient job states. */
enum class JobState : std::uint8_t
{
    queued = 0,  ///< waiting for admission (or retry backoff)
    running,     ///< an attempt is on the machine
    completed,   ///< all iterations done
    failed,      ///< retry budget exhausted (terminal)
    shed,        ///< rejected at submit (queue_full / too_large)
    deadline_cancelled, ///< service deadline exceeded (terminal)
    starved,     ///< queue drained with no feasible partition left
};

const char *state_name(JobState s);

/** Aggregate serve-layer counters (registered under serve.*). */
struct ServeTotals
{
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t attempts = 0;
    std::uint64_t completed = 0;
    std::uint64_t retried = 0;
    std::uint64_t requeued = 0;
    std::uint64_t failedTerminal = 0;
    std::uint64_t shedQueueFull = 0;
    std::uint64_t shedTooLarge = 0;
    std::uint64_t starved = 0;
    std::uint64_t deadlineCancelled = 0;
    std::uint64_t attemptsKilled = 0;  ///< placement hit by a kill
    std::uint64_t attemptsErrored = 0; ///< CommError without a kill
    std::uint64_t partitionsQuarantined = 0;
};

/** Everything the scheduler learned about one job. */
struct JobRecord
{
    JobSpec spec;
    JobState state = JobState::queued;
    std::string reason; ///< shed/failure/cancel explanation

    std::uint64_t attempts = 0;
    std::uint64_t retries = 0;
    std::uint64_t deadlineHits = 0;
    std::uint64_t stateNum = 0; ///< JobState as a registry gauge

    Tick submitTick = 0;
    Tick enqueueTick = 0; ///< last (re-)enqueue, for queue-wait
    Tick firstStartTick = 0;
    Tick finishTick = 0;

    std::uint64_t queuedTicks = 0;  ///< total time spent queued
    std::uint64_t serviceTicks = 0; ///< total time on the machine
    std::uint64_t cellTicks = 0;    ///< serviceTicks x partition size

    bool
    terminal() const
    {
        return state != JobState::queued && state != JobState::running;
    }
};

/** The gang scheduler driving one machine. */
class GangScheduler
{
  public:
    GangScheduler(hw::Machine &machine, ServeConfig cfg);
    ~GangScheduler();

    GangScheduler(const GangScheduler &) = delete;
    GangScheduler &operator=(const GangScheduler &) = delete;

    /**
     * Submit one job at the current simulated time: shed it, queue
     * it, or launch it immediately. Callable before the run starts
     * or from inside a simulation event.
     */
    void submit(const JobSpec &spec);

    /** Schedule every spec's submit() at its arrivalUs. Call before
     *  machine.run_to_completion(). */
    void schedule_stream(const std::vector<JobSpec> &stream);

    /**
     * Call after the event queue drained: jobs still queued (no
     * feasible partition remained) become terminal `starved`, and
     * attempts that never unwound are flagged as deadlocked.
     */
    void finalize();

    const std::deque<JobRecord> &jobs() const { return jobRecs; }
    const ServeTotals &totals() const { return tot; }
    const Partitioner &partitioner() const { return parts; }
    const ServeConfig &config() const { return cfg; }

    /** @return true when every submitted job reached a terminal
     *  state (call after finalize()). */
    bool all_terminal() const;

    /** Human-readable post-run summary (totals, utilization,
     *  latency, per-tenant fairness). */
    std::string report() const;

    /** Jain's fairness index over per-tenant completed cell-ticks
     *  (1.0 = perfectly fair; 0 when nothing completed). */
    double tenant_fairness() const;

    /** Completed-attempt cell-ticks / (machine cells x makespan). */
    double utilization() const;

    /**
     * Seed-chosen cell currently held by a running attempt, or -1
     * when the fleet is momentarily idle. The fault drill uses this
     * to aim a kill at a gang that actually exists (a fixed
     * cell-and-time pick can land on an idle instant).
     */
    CellId pick_busy_cell(std::uint64_t salt) const;

  private:
    /** One gang launch of one job. */
    struct Attempt
    {
        JobRecord *job = nullptr;
        std::uint64_t gen = 0; ///< scheduler-unique attempt id
        Placement place;
        std::unique_ptr<core::Group> group;
        net::Snet::ContextId barrierCtx = 0;
        JobRun run;
        std::vector<std::unique_ptr<sim::Process>> procs;
        std::vector<std::unique_ptr<core::Context>> ctxs;
        std::vector<char> doneFlags; ///< per-rank fiber returned
        std::atomic<bool> cancel{false};
        bool doomed = false;  ///< placement intersected a kill
        bool errored = false; ///< some member threw CommError
        bool deadlined = false;
        bool stopped = false; ///< cooperative early exit
        bool finished = false;
        std::string firstError;
        Tick startTick = 0;
        Tick deadlineTick = 0;
    };

    void register_stats();
    void register_job_stats(JobRecord &r);
    void shed_locked(JobRecord &r, const char *why, bool queueFull);
    void try_admit_locked();
    void launch_locked(JobRecord &r, Placement place);
    void attempt_cell_done(Attempt &a, int rank, bool ok);
    void note_attempt_error(Attempt &a, const std::string &what);
    void check_finish_locked(Attempt &a);
    void finish_attempt_locked(Attempt &a);
    void requeue(std::size_t jobIdx);
    void on_deadline(std::uint64_t gen);
    void on_kill(CellId cell);
    void reap_locked();
    void schedule_reap_locked();
    double deadline_us(DeadlineClass c) const;
    Tick dispatch_ticks() const;

    hw::Machine &machine;
    ServeConfig cfg;
    Partitioner parts;

    mutable std::mutex mu;
    std::deque<JobRecord> jobRecs; ///< deque: stable addresses for
                                   ///< registered per-job gauges
    std::vector<std::size_t> queue; ///< indices into jobRecs
    std::vector<std::unique_ptr<Attempt>> attempts;
    std::map<std::uint64_t, Attempt *> liveAttempts; ///< by gen
    std::uint64_t genCounter = 0;
    int runningCount = 0;
    bool reapPending = false;
    ServeTotals tot;
    Tick firstSubmitTick = 0;
    Tick lastFinishTick = 0;
};

} // namespace ap::serve

#endif // AP_SERVE_SCHEDULER_HH
