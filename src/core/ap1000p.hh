/**
 * @file
 * Umbrella header: everything a user of the AP1000+ library needs.
 *
 * Quickstart:
 * @code
 * #include "core/ap1000p.hh"
 *
 * ap::hw::Machine m(ap::hw::MachineConfig::ap1000_plus(16));
 * ap::core::run_spmd(m, [](ap::core::Context &ctx) {
 *     ap::Addr buf = ctx.alloc(1024);
 *     ap::Addr flag = ctx.alloc_flag();
 *     if (ctx.id() == 0)
 *         ctx.put(1, buf, buf, 1024, ap::no_flag, flag);
 *     if (ctx.id() == 1)
 *         ctx.wait_flag(flag, 1);
 *     ctx.barrier();
 * });
 * @endcode
 */

#ifndef AP_CORE_AP1000P_HH
#define AP_CORE_AP1000P_HH

#include "base/types.hh"
#include "core/context.hh"
#include "core/program.hh"
#include "core/trace.hh"
#include "hw/config.hh"
#include "hw/machine.hh"

#endif // AP_CORE_AP1000P_HH
