/**
 * @file
 * The per-cell programming interface — the paper's contribution as an
 * API.
 *
 * A Context is what SPMD code running on one cell sees: the
 * put()/get()/put_stride()/get_stride() interface of Section 3.1, the
 * readRemote()/writeRemote() runtime calls of Section 2.2, flags and
 * the Ack & Barrier completion model, S-net barriers, scalar
 * reductions over communication registers and vector reductions over
 * the ring buffer (Section 4.5), the SEND/RECEIVE compatibility model
 * (Section 4.3), and distributed-shared-memory load/store
 * (Section 4.2).
 *
 * Every operation both *acts* on the functional machine (bytes move,
 * flags increment) and *emits a probe event* into the attached trace,
 * which MLSim can replay under a different machine model.
 */

#ifndef AP_CORE_CONTEXT_HH
#define AP_CORE_CONTEXT_HH

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/types.hh"
#include "core/trace.hh"
#include "hw/machine.hh"
#include "net/message.hh"
#include "sim/process.hh"

namespace ap::core
{

/**
 * Typed communication failure. Thrown by the hardened runtime paths
 * (write_remote/read_remote under a RetryPolicy, rts_movewait) once
 * the retry budget is exhausted — the alternative to hanging forever
 * on a completion flag that will never increment.
 */
class CommError : public std::runtime_error
{
  public:
    enum class Kind
    {
        timeout,     ///< completion wait timed out, retries exhausted
        fault,       ///< page faults flushed the transfer repeatedly
        watchdog,    ///< flag wait exceeded the watchdog deadline;
                     ///< what() carries a machine-wide wait graph
        cell_failed, ///< this cell (or a required peer) is fail-stop
    };

    CommError(Kind kind, CellId cell, CellId peer,
              const std::string &what)
        : std::runtime_error(what), errKind(kind), cellId(cell),
          peerId(peer)
    {
    }

    Kind kind() const { return errKind; }
    CellId cell() const { return cellId; }
    CellId peer() const { return peerId; }

  private:
    Kind errKind;
    CellId cellId;
    CellId peerId;
};

/** Reduction operators for global operations. */
enum class ReduceOp : std::uint8_t
{
    sum,
    min,
    max,
    prod,
};

/** A set of cells for group collectives (sorted, unique). */
class Group
{
  public:
    /** Construct from a member list (sorted and deduplicated). */
    explicit Group(std::vector<CellId> members);

    /** The group [0, machine size): every cell. */
    static Group all(int cells);

    /** A contiguous range [first, first + count). */
    static Group range(CellId first, int count);

    /** Every @p stride-th cell starting at @p first. */
    static Group strided(CellId first, int count, int stride);

    int size() const { return static_cast<int>(ids.size()); }
    const std::vector<CellId> &members() const { return ids; }

    /** Rank of @p cell in the group, or -1 when not a member. */
    int rank_of(CellId cell) const;

    /** Member at @p rank. */
    CellId at(int rank) const;

    bool contains(CellId cell) const { return rank_of(cell) >= 0; }

  private:
    std::vector<CellId> ids;
};

/** Per-context operation counters (Table 3 bookkeeping). */
struct ContextStats
{
    std::uint64_t puts = 0;
    std::uint64_t putStrides = 0;
    std::uint64_t gets = 0;
    std::uint64_t getStrides = 0;
    std::uint64_t sends = 0;
    std::uint64_t recvs = 0;
    std::uint64_t barriers = 0;
    std::uint64_t gops = 0;
    std::uint64_t vgops = 0;
    std::uint64_t acksRequested = 0;
    std::uint64_t putBytes = 0;
    std::uint64_t getBytes = 0;
    /** Collectives completed over a reduced (degraded) member set
     *  because one or more cells had failed. */
    std::uint64_t degradedCollectives = 0;
};

/**
 * The SPMD execution context of one cell. Created by run_spmd(); all
 * methods must be called from the cell's own fiber.
 */
class Context
{
  public:
    /**
     * @param machine the functional machine
     * @param id this cell
     * @param proc the fiber process running this cell's program
     * @param allBarrier S-net context covering all cells
     * @param trace probe sink (may be nullptr)
     */
    Context(hw::Machine &machine, CellId id, sim::Process &proc,
            net::Snet::ContextId allBarrier, Trace *trace);

    // -- identity -----------------------------------------------------

    /** This cell's id. */
    CellId id() const { return cellId; }

    /** Machine size. */
    int nprocs() const { return machine.size(); }

    /** Current simulated time. */
    Tick now() const;

    // -- local memory -------------------------------------------------

    /**
     * Bump-allocate @p bytes of this cell's memory (8-byte aligned).
     * Symmetric programs that allocate in lockstep get identical
     * addresses on every cell.
     */
    Addr alloc(std::size_t bytes);

    /** Allocate and zero a 4-byte flag variable. */
    Addr alloc_flag();

    /** Write host bytes into this cell's memory at logical @p addr. */
    void poke(Addr addr, std::span<const std::uint8_t> data);

    /** Read this cell's memory at logical @p addr. */
    void peek(Addr addr, std::span<std::uint8_t> out) const;

    /** Typed helpers. */
    void poke_f64(Addr addr, double v);
    double peek_f64(Addr addr) const;
    void poke_u32(Addr addr, std::uint32_t v);
    std::uint32_t peek_u32(Addr addr) const;

    // -- the PUT/GET interface (Section 3.1) ---------------------------

    /**
     * put(node_id, raddr, laddr, size, send_flag, recv_flag, ack):
     * non-blocking one-sided write of @p size bytes from local
     * @p laddr to @p raddr on @p dst. @p send_flag increments here
     * when the send DMA completes; @p recv_flag increments on @p dst
     * when its receive DMA completes. With @p ack, a GET probe to
     * address 0 follows the PUT and bumps the implicit acknowledge
     * flag on its way back (Section 4.1, "Acknowledge packet").
     */
    void put(CellId dst, Addr raddr, Addr laddr, std::uint32_t size,
             Addr send_flag, Addr recv_flag, bool ack = false);

    /**
     * get(node_id, raddr, laddr, size, send_flag, recv_flag):
     * non-blocking one-sided read. @p send_flag increments on @p dst
     * when the reply leaves it; @p recv_flag increments here when the
     * data lands.
     */
    void get(CellId dst, Addr raddr, Addr laddr, std::uint32_t size,
             Addr send_flag, Addr recv_flag);

    /** put_stride(): the 1-D strided PUT of Section 3.1. */
    void put_stride(CellId dst, Addr raddr, Addr laddr, bool ack,
                    Addr send_flag, Addr recv_flag,
                    net::StrideSpec send_spec,
                    net::StrideSpec recv_spec);

    /** get_stride(): the 1-D strided GET of Section 3.1. */
    void get_stride(CellId dst, Addr raddr, Addr laddr,
                    Addr send_flag, Addr recv_flag,
                    net::StrideSpec send_spec,
                    net::StrideSpec recv_spec);

    /**
     * Two-dimensional stride PUT by repetition — the paper's answer
     * to higher dimensions: "high-dimensional stride data transfer
     * can be done efficiently by repeating one-dimensional stride
     * data transfer, as long as the overhead for each ... is very
     * small" (Section 4). Issues @p planes 1-D stride PUTs whose
     * local/remote start addresses advance by the plane pitches.
     * @p recv_flag increments once per plane at the destination.
     */
    void put_stride_2d(CellId dst, Addr raddr, Addr laddr, bool ack,
                       Addr send_flag, Addr recv_flag,
                       net::StrideSpec send_spec,
                       net::StrideSpec recv_spec,
                       std::uint32_t planes, Addr send_plane_pitch,
                       Addr recv_plane_pitch);

    // -- runtime direct remote access (Section 2.2) --------------------

    /**
     * writeRemote: blocking one-sided write (PUT + ack wait).
     */
    void write_remote(CellId dst, Addr raddr, Addr laddr,
                      std::uint32_t size);

    /**
     * readRemote: blocking one-sided read (GET + flag wait).
     */
    void read_remote(CellId dst, Addr raddr, Addr laddr,
                     std::uint32_t size);

    // -- completion detection ------------------------------------------

    /** Read a flag variable. */
    std::uint32_t flag(Addr flag_addr) const;

    /** Block until the flag at @p flag_addr reaches @p target. */
    void wait_flag(Addr flag_addr, std::uint32_t target);

    /**
     * Block until every PUT issued with ack=true has been
     * acknowledged — the Ack half of the Ack & Barrier model.
     */
    void wait_all_acks();

    /**
     * wait_flag with a deadline. @return true when the flag reached
     * @p target, false when the deadline passed first.
     */
    bool wait_flag_for(Addr flag_addr, std::uint32_t target,
                       Tick deadline);

    /** wait_all_acks with a deadline. @return true on completion. */
    bool wait_all_acks_for(Tick deadline);

    /**
     * Write off every outstanding acknowledgement as lost and restart
     * ack accounting from the hardware counter's current value. Part
     * of recovery: after a timeout the runtime reissues transfers
     * instead of waiting for acks that will never come.
     */
    void resync_acks();

    /**
     * Issue a bare acknowledge probe (a GET to address 0) toward
     * @p dst. In-order delivery makes its reply confirm every
     * earlier PUT to @p dst — the building block of the
     * ack-last-PUT-per-destination policy of Section 5.4.
     */
    void ack_probe(CellId dst);

    // -- distributed shared memory (Section 4.2) -----------------------

    /** Blocking hardware remote load of a 32-bit word. */
    std::uint32_t remote_load_u32(CellId dst, Addr raddr);

    /** Blocking hardware remote load of a 64-bit word. */
    std::uint64_t remote_load_u64(CellId dst, Addr raddr);

    /** Non-blocking hardware remote store (auto-acked). */
    void remote_store_u32(CellId dst, Addr raddr, std::uint32_t v);

    /** Non-blocking hardware remote store of 8 bytes. */
    void remote_store_u64(CellId dst, Addr raddr, std::uint64_t v);

    /**
     * Load through a *global* shared-space address (Section 4.2's
     * 36-bit split space): the upper bits select the owning cell,
     * the rest its local address. Blocking.
     */
    std::uint32_t shared_load_u32(Addr global);

    /** Store through a global shared-space address. Non-blocking. */
    void shared_store_u32(Addr global, std::uint32_t v);

    /** Global shared-space address of (cell, local address). */
    Addr shared_addr(CellId cell, Addr local) const;

    // -- collectives (Sections 2.3, 4.5) --------------------------------

    /** All-cell barrier over the S-net. */
    void barrier();

    /** Group barrier in software (communication registers). */
    void barrier_group(const Group &group);

    /** Scalar allreduce over communication registers. */
    double allreduce(double value, ReduceOp op);

    /** Scalar allreduce within a group. */
    double allreduce_group(const Group &group, double value,
                           ReduceOp op);

    /** Integer scalar allreduce. */
    std::uint64_t allreduce_u64(std::uint64_t value, ReduceOp op);

    /**
     * Vector allreduce: ring pipeline over SEND/RECEIVE with in-place
     * ring-buffer consumption (Section 4.5). @p vec (logical address
     * of @p count doubles) is replaced by the elementwise reduction.
     */
    void allreduce_vector(Addr vec, std::uint32_t count, ReduceOp op);

    // -- B-net broadcast (Section 4, Figure 4) ----------------------------

    /**
     * Broadcast [laddr, laddr + size) from @p root over the B-net
     * into the same address on every other cell, incrementing
     * @p recv_flag there on arrival. The root's own copy is already
     * in place; receivers wait on the flag. Non-blocking at the root.
     */
    void broadcast(CellId root, Addr laddr, std::uint32_t size,
                   Addr recv_flag);

    // -- SEND/RECEIVE (Section 4.3) -------------------------------------

    /** Blocking-free SEND of memory [laddr, laddr+size) to @p dst. */
    void send(CellId dst, std::int32_t tag, Addr laddr,
              std::uint32_t size);

    /**
     * Blocking RECEIVE: searches the ring buffer for a message from
     * @p src (any_source ok) with @p tag (any_tag ok) and copies it
     * to @p laddr. @return the payload size.
     */
    std::uint32_t recv(CellId src, std::int32_t tag, Addr laddr,
                       std::uint32_t max_size);

    // -- computation ----------------------------------------------------

    /** Model @p us microseconds of processor work. */
    void compute_us(double us);

    /** Model @p flops floating-point operations of work. */
    void compute_flops(double flops);

    // -- bookkeeping ----------------------------------------------------

    /**
     * Mark subsequent operations as issued by the language runtime:
     * their trace events carry viaRts, which MLSim bills as run-time
     * system time (address calculation, stride pattern discovery).
     */
    void set_rts_mode(bool on);

    const ContextStats &stats() const { return ctxStats; }

    /**
     * @return true when the most recent collective (barrier or
     * reduction) completed over a reduced member set because some
     * cells had failed — the degraded-result marker: the value is
     * valid over the survivors only.
     */
    bool last_collective_degraded() const
    {
        return lastCollectiveDegraded;
    }

    /** The hardware cell behind this context. */
    hw::Cell &cell() { return machine.cell(cellId); }
    const hw::Cell &cell() const { return machine.cell(cellId); }

    /** The underlying process (for advanced waiting). */
    sim::Process &process() { return proc; }

    /** The owning machine. */
    hw::Machine &owner() { return machine; }

  private:
    void trace(TraceEvent ev);
    /** Throw CommError(cell_failed) when this cell is fail-stop. */
    void check_alive();
    /** Throw CommError(watchdog) with a machine wait-graph dump. */
    [[noreturn]] void watchdog_fire(const char *what, Addr addr,
                                    std::uint64_t target);
    /** Watchdog deadline from now, or 0 when the watchdog is off. */
    Tick watchdog_deadline() const;
    /** Park until the DSM load reply for @p token arrives. */
    void wait_load_reply(std::uint64_t token, Addr raddr,
                         std::vector<std::uint8_t> &data);
    /** The group of all non-failed cells. */
    Group live_group() const;
    /** Ring-buffer take with the watchdog armed (copy or in-place). */
    hw::SendRecord ring_take_guarded(CellId src, std::int32_t tag,
                                     bool in_place,
                                     const char *what);
    /** group_reduce() body, after failed members were filtered out. */
    double group_reduce_impl(const Group &group, double value,
                             ReduceOp op);
    void issue(hw::Command cmd);
    void issue_ack_probe(CellId dst);
    double combine(double a, double b, ReduceOp op) const;
    double commreg_exchange(CellId partner, int slot, double value);
    double group_reduce(const Group &group, double value, ReduceOp op);
    std::int32_t group_tag(const Group &group);
    Addr scratch_flag();
    Addr scratch_buffer(std::size_t bytes);
    Addr verify_buffer(std::size_t bytes);
    /**
     * GET with timeout and bounded reissue. @return true once the
     * data landed at @p laddr. A dedicated flag tracks the reply;
     * duplicated replies merely overshoot it.
     */
    bool timed_get(CellId dst, Addr raddr, Addr laddr,
                   std::uint32_t size, Tick timeout, int max_retries);
    void wait_flag_internal(Addr flag_addr, std::uint32_t target);
    /**
     * Library-internal SEND: stages @p data in a scratch buffer
     * protected by a send flag (the paper's mechanism for guarding
     * the sending area of a non-blocking transfer), and emits no
     * probe event — collective cost is modelled at the gop/vgop
     * level.
     */
    void internal_send(CellId dst, std::int32_t tag,
                       std::span<const std::uint8_t> data);
    /** Library-internal blocking in-place receive; no probe event. */
    hw::SendRecord internal_recv(CellId src, std::int32_t tag);

    hw::Machine &machine;
    CellId cellId;
    sim::Process &proc;
    net::Snet::ContextId allBarrier;
    Trace *traceSink;

    Addr heapNext;
    Addr verifyBufAddr = 0;
    std::size_t verifyBufSize = 0;
    Addr scratchFlagAddr = 0;
    Addr internalSendFlag = 0;
    std::uint32_t internalSendCount = 0;
    std::unordered_map<std::size_t, Addr> scratchBufs;
    std::unordered_map<std::uint64_t, std::uint32_t> groupSeq;
    std::uint64_t ackBase = 0;
    std::uint64_t acksOutstanding = 0;
    std::uint64_t tracedPutAcks = 0;
    std::uint32_t collectiveSeq = 0;
    bool rtsMode = false;
    bool lastCollectiveDegraded = false;
    ContextStats ctxStats;
};

} // namespace ap::core

#endif // AP_CORE_CONTEXT_HH
