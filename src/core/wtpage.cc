#include "core/wtpage.hh"

#include <cstring>

#include "base/logging.hh"

namespace ap::core
{

WtCache::WtCache(Context &ctx, int frames)
    : ctx(ctx), numFrames(frames)
{
    if (frames < 1)
        fatal("write-through cache needs at least one frame");
    for (int i = 0; i < frames; ++i)
        freeFrames.push_back(ctx.alloc(page_bytes));
}

Addr
WtCache::frame_for(CellId owner, Addr raddr)
{
    PageKey key = key_of(owner, raddr);
    auto it = resident.find(key);
    if (it != resident.end()) {
        ++wtStats.readHits;
        return it->second;
    }

    ++wtStats.readMisses;
    if (freeFrames.empty()) {
        // FIFO replacement.
        PageKey victim = fifo.front();
        fifo.pop_front();
        auto vit = resident.find(victim);
        freeFrames.push_back(vit->second);
        resident.erase(vit);
        ++wtStats.evictions;
    }
    Addr frame = freeFrames.front();
    freeFrames.pop_front();

    // Fetch the whole page with one GET.
    Addr page_base = (raddr / page_bytes) * page_bytes;
    ctx.read_remote(owner, page_base, frame, page_bytes);

    resident.emplace(key, frame);
    fifo.push_back(key);
    return frame;
}

void
WtCache::read(CellId owner, Addr raddr, std::span<std::uint8_t> out)
{
    Addr off = raddr % page_bytes;
    if (off + out.size() > page_bytes)
        fatal("write-through read crosses a page boundary "
              "(%#llx + %zu)",
              static_cast<unsigned long long>(raddr), out.size());
    Addr frame = frame_for(owner, raddr);
    ctx.peek(frame + off, out);
}

double
WtCache::read_f64(CellId owner, Addr raddr)
{
    std::uint8_t buf[8];
    read(owner, raddr, buf);
    double v;
    std::memcpy(&v, buf, 8);
    return v;
}

std::uint32_t
WtCache::read_u32(CellId owner, Addr raddr)
{
    std::uint8_t buf[4];
    read(owner, raddr, buf);
    std::uint32_t v;
    std::memcpy(&v, buf, 4);
    return v;
}

void
WtCache::write(CellId owner, Addr raddr,
               std::span<const std::uint8_t> data)
{
    if (data.size() > 8)
        fatal("write-through stores are word-sized (got %zu bytes)",
              data.size());
    Addr off = raddr % page_bytes;
    if (off + data.size() > page_bytes)
        fatal("write-through store crosses a page boundary");

    ++wtStats.writeThroughs;

    // Update the local copy when present (the "write through" part).
    auto it = resident.find(key_of(owner, raddr));
    if (it != resident.end())
        ctx.poke(it->second + off, data);

    // And push the word to the owner via the hardware remote store.
    if (owner == ctx.id()) {
        ctx.poke(raddr, data);
        return;
    }
    // Route through the DSM remote-store path (auto-acked).
    if (data.size() == 4) {
        std::uint32_t v;
        std::memcpy(&v, data.data(), 4);
        ctx.remote_store_u32(owner, raddr, v);
    } else if (data.size() == 8) {
        std::uint64_t v;
        std::memcpy(&v, data.data(), 8);
        ctx.remote_store_u64(owner, raddr, v);
    } else {
        fatal("write-through stores must be 4 or 8 bytes");
    }
}

void
WtCache::write_f64(CellId owner, Addr raddr, double v)
{
    std::uint8_t buf[8];
    std::memcpy(buf, &v, 8);
    write(owner, raddr, buf);
}

void
WtCache::write_u32(CellId owner, Addr raddr, std::uint32_t v)
{
    std::uint8_t buf[4];
    std::memcpy(buf, &v, 4);
    write(owner, raddr, buf);
}

void
WtCache::invalidate(CellId owner, Addr raddr)
{
    PageKey key = key_of(owner, raddr);
    auto it = resident.find(key);
    if (it == resident.end())
        return;
    ++wtStats.invalidations;
    freeFrames.push_back(it->second);
    resident.erase(it);
    for (auto f = fifo.begin(); f != fifo.end(); ++f) {
        if (*f == key) {
            fifo.erase(f);
            break;
        }
    }
}

void
WtCache::invalidate_all()
{
    wtStats.invalidations += resident.size();
    for (const auto &[key, frame] : resident)
        freeFrames.push_back(frame);
    resident.clear();
    fifo.clear();
}

bool
WtCache::cached(CellId owner, Addr raddr) const
{
    return resident.count(key_of(owner, raddr)) > 0;
}

} // namespace ap::core
