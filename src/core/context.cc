#include "core/context.hh"

#include <algorithm>
#include <cstring>
#include <optional>

#include "base/logging.hh"

namespace ap::core
{

namespace
{

/** First heap address; 0 is reserved (no_flag / ack probe). */
constexpr Addr heap_base = 0x100;

} // namespace

// ---------------------------------------------------------------- Group

Group::Group(std::vector<CellId> members) : ids(std::move(members))
{
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    if (ids.empty())
        fatal("a group needs at least one member");
}

Group
Group::all(int cells)
{
    std::vector<CellId> m(static_cast<std::size_t>(cells));
    for (int i = 0; i < cells; ++i)
        m[static_cast<std::size_t>(i)] = i;
    return Group(std::move(m));
}

Group
Group::range(CellId first, int count)
{
    std::vector<CellId> m;
    m.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i)
        m.push_back(first + i);
    return Group(std::move(m));
}

Group
Group::strided(CellId first, int count, int stride)
{
    std::vector<CellId> m;
    m.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i)
        m.push_back(first + i * stride);
    return Group(std::move(m));
}

int
Group::rank_of(CellId cell) const
{
    auto it = std::lower_bound(ids.begin(), ids.end(), cell);
    if (it == ids.end() || *it != cell)
        return -1;
    return static_cast<int>(it - ids.begin());
}

CellId
Group::at(int rank) const
{
    if (rank < 0 || rank >= size())
        panic("group rank %d out of range (size %d)", rank, size());
    return ids[static_cast<std::size_t>(rank)];
}

// -------------------------------------------------------------- Context

Context::Context(hw::Machine &machine, CellId id, sim::Process &proc,
                 net::Snet::ContextId allBarrier, Trace *trace)
    : machine(machine), cellId(id), proc(proc),
      allBarrier(allBarrier), traceSink(trace), heapNext(heap_base),
      ackBase(machine.cell(id).msc().ack_count())
{
}

Addr
Context::scratch_flag()
{
    if (scratchFlagAddr == 0)
        scratchFlagAddr = alloc_flag();
    return scratchFlagAddr;
}

Addr
Context::scratch_buffer(std::size_t bytes)
{
    // Size-class cache so repeated collectives don't leak the bump
    // allocator dry.
    std::size_t cls = 64;
    while (cls < bytes)
        cls *= 2;
    auto it = scratchBufs.find(cls);
    if (it != scratchBufs.end())
        return it->second;
    Addr a = alloc(cls);
    scratchBufs.emplace(cls, a);
    return a;
}

Addr
Context::verify_buffer(std::size_t bytes)
{
    // Read-back verification needs its own buffer: scratch_buffer()
    // doubles as the internal-send staging area, which an in-flight
    // send DMA may still be gathering from.
    if (verifyBufSize < bytes) {
        std::size_t cls = 64;
        while (cls < bytes)
            cls *= 2;
        verifyBufAddr = alloc(cls);
        verifyBufSize = cls;
    }
    return verifyBufAddr;
}

Tick
Context::now() const
{
    return machine.sim().now();
}

void
Context::trace(TraceEvent ev)
{
    if (traceSink) {
        ev.at = machine.sim().now();
        ev.viaRts = rtsMode;
        traceSink->record(cellId, ev);
    }
}

void
Context::set_rts_mode(bool on)
{
    rtsMode = on;
}

// -- fail-stop / watchdog ----------------------------------------------

void
Context::check_alive()
{
    if (machine.cell_failed(cellId))
        throw CommError(
            CommError::Kind::cell_failed, cellId, cellId,
            strprintf("cell %d is fail-stop; communication aborted\n%s",
                      cellId, machine.postmortem().c_str()));
}

Tick
Context::watchdog_deadline() const
{
    const hw::RetryPolicy &rp = machine.config().retry;
    if (!rp.watchdog_enabled())
        return 0;
    return machine.sim().now() + us_to_ticks(rp.watchdogUs);
}

void
Context::watchdog_fire(const char *what, Addr addr,
                       std::uint64_t target)
{
    machine.clear_wait(cellId);
    if (machine.cell_failed(cellId))
        throw CommError(
            CommError::Kind::cell_failed, cellId, cellId,
            strprintf("cell %d: %s interrupted: cell is fail-stop\n%s",
                      cellId, what, machine.postmortem().c_str()));
    throw CommError(
        CommError::Kind::watchdog, cellId, cellId,
        strprintf("cell %d: watchdog expired after %.0f us blocked in "
                  "%s (addr=%#llx want %llu)\n%s%s",
                  cellId, machine.config().retry.watchdogUs, what,
                  static_cast<unsigned long long>(addr),
                  static_cast<unsigned long long>(target),
                  machine.wait_graph().c_str(),
                  machine.postmortem().c_str()));
}

Group
Context::live_group() const
{
    std::vector<CellId> m;
    for (int i = 0; i < machine.size(); ++i)
        if (!machine.cell_failed(i))
            m.push_back(i);
    if (m.empty())
        fatal("every cell has failed");
    return Group(std::move(m));
}

// -- local memory ------------------------------------------------------

Addr
Context::alloc(std::size_t bytes)
{
    Addr addr = heapNext;
    heapNext += (bytes + 7) & ~std::size_t{7};
    if (heapNext > machine.config().memBytesPerCell)
        fatal("cell %d out of memory (heap %llu > %zu bytes); raise "
              "MachineConfig::memBytesPerCell",
              cellId, static_cast<unsigned long long>(heapNext),
              machine.config().memBytesPerCell);
    return addr;
}

Addr
Context::alloc_flag()
{
    Addr f = alloc(4);
    poke_u32(f, 0);
    return f;
}

void
Context::poke(Addr addr, std::span<const std::uint8_t> data)
{
    if (!cell().mc().store(addr, data))
        fatal("cell %d: poke fault at %#llx", cellId,
              static_cast<unsigned long long>(addr));
}

void
Context::peek(Addr addr, std::span<std::uint8_t> out) const
{
    if (!machine.cell(cellId).mc().load(addr, out))
        fatal("cell %d: peek fault at %#llx", cellId,
              static_cast<unsigned long long>(addr));
}

void
Context::poke_f64(Addr addr, double v)
{
    std::uint8_t buf[8];
    std::memcpy(buf, &v, 8);
    poke(addr, buf);
}

double
Context::peek_f64(Addr addr) const
{
    std::uint8_t buf[8];
    peek(addr, buf);
    double v;
    std::memcpy(&v, buf, 8);
    return v;
}

void
Context::poke_u32(Addr addr, std::uint32_t v)
{
    std::uint8_t buf[4];
    std::memcpy(buf, &v, 4);
    poke(addr, buf);
}

std::uint32_t
Context::peek_u32(Addr addr) const
{
    std::uint8_t buf[4];
    peek(addr, buf);
    std::uint32_t v;
    std::memcpy(&v, buf, 4);
    return v;
}

// -- internal (library-level) primitives ---------------------------------

void
Context::wait_flag_internal(Addr flag_addr, std::uint32_t target)
{
    Tick deadline = watchdog_deadline();
    if (deadline == 0) {
        while (flag(flag_addr) < target)
            proc.wait(cell().mc().flag_cond());
        return;
    }
    machine.set_wait(cellId, "wait_flag_internal", flag_addr, target);
    while (flag(flag_addr) < target)
        if (!proc.wait_until(cell().mc().flag_cond(), deadline) &&
            flag(flag_addr) < target)
            watchdog_fire("wait_flag_internal", flag_addr, target);
    machine.clear_wait(cellId);
}

void
Context::internal_send(CellId dst, std::int32_t tag,
                       std::span<const std::uint8_t> data)
{
    if (internalSendFlag == 0)
        internalSendFlag = alloc_flag();
    // The staging buffer is reused; the send flag protects it the way
    // Section 3.1 prescribes for any non-blocking send area.
    wait_flag_internal(internalSendFlag, internalSendCount);
    Addr buf = scratch_buffer(data.size());
    poke(buf, data);

    hw::Command cmd;
    cmd.kind = hw::CommandKind::send;
    cmd.dst = dst;
    cmd.laddr = buf;
    cmd.tag = tag;
    cmd.sendFlag = internalSendFlag;
    cmd.localStride = net::StrideSpec::contiguous(
        static_cast<std::uint32_t>(data.size()));
    issue(std::move(cmd));
    ++internalSendCount;
}

hw::SendRecord
Context::internal_recv(CellId src, std::int32_t tag)
{
    proc.delay(us_to_ticks(machine.config().timings.receiveSearchUs));
    return ring_take_guarded(src, tag, /*in_place=*/true,
                             "recv_reduce");
}

hw::SendRecord
Context::ring_take_guarded(CellId src, std::int32_t tag,
                           bool in_place, const char *what)
{
    Tick deadline = watchdog_deadline();
    if (deadline == 0) {
        return in_place
                   ? cell().ring().consume_in_place(src, tag, proc)
                   : cell().ring().receive(src, tag, proc);
    }
    machine.set_wait(cellId, what, /*addr=*/0,
                     static_cast<std::uint64_t>(
                         static_cast<std::uint32_t>(tag)));
    std::optional<hw::SendRecord> got = cell().ring().receive_until(
        src, tag, proc, deadline, in_place);
    if (!got)
        watchdog_fire(what, /*addr=*/0,
                      static_cast<std::uint64_t>(
                          static_cast<std::uint32_t>(tag)));
    machine.clear_wait(cellId);
    return std::move(*got);
}

// -- command issue -----------------------------------------------------

void
Context::issue(hw::Command cmd)
{
    check_alive();
    // Writing the 8 parameter words to the MSC+ special address.
    Tick t0 = machine.sim().now();
    proc.delay(us_to_ticks(machine.config().timings.enqueueUs));
    if ((cmd.traceId = machine.spans().new_trace()) != 0) {
        obs::SpanOp op = obs::SpanOp::none;
        switch (cmd.kind) {
          case hw::CommandKind::put:
            op = obs::SpanOp::put;
            break;
          case hw::CommandKind::get:
            op = cmd.isAckProbe ? obs::SpanOp::ack : obs::SpanOp::get;
            break;
          case hw::CommandKind::send:
            op = obs::SpanOp::send;
            break;
          default:
            break;
        }
        machine.spans().record(cellId, cmd.traceId,
                               obs::SpanStage::issue, t0,
                               machine.sim().now(), op);
    }
    cell().msc().issue_user(std::move(cmd));
}

void
Context::ack_probe(CellId dst)
{
    TraceEvent ev;
    ev.op = TraceOp::put;
    ev.peer = dst;
    ev.bytes = 0;
    ev.ack = true;
    trace(ev);
    issue_ack_probe(dst);
}

void
Context::issue_ack_probe(CellId dst)
{
    hw::Command probe;
    probe.kind = hw::CommandKind::get;
    probe.dst = dst;
    probe.raddr = ack_probe_addr;
    probe.isAckProbe = true;
    probe.remoteStride = net::StrideSpec::contiguous(0);
    probe.localStride = net::StrideSpec::contiguous(0);
    ++acksOutstanding;
    ++tracedPutAcks;
    ++ctxStats.acksRequested;
    issue(probe);
}

// -- PUT/GET -----------------------------------------------------------

void
Context::put(CellId dst, Addr raddr, Addr laddr, std::uint32_t size,
             Addr send_flag, Addr recv_flag, bool ack)
{
    put_stride(dst, raddr, laddr, ack, send_flag, recv_flag,
               net::StrideSpec::contiguous(size),
               net::StrideSpec::contiguous(size));
}

void
Context::put_stride(CellId dst, Addr raddr, Addr laddr, bool ack,
                    Addr send_flag, Addr recv_flag,
                    net::StrideSpec send_spec,
                    net::StrideSpec recv_spec)
{
    if (send_spec.total_bytes() != recv_spec.total_bytes())
        fatal("put_stride: send pattern (%llu B) != recv pattern "
              "(%llu B)",
              static_cast<unsigned long long>(send_spec.total_bytes()),
              static_cast<unsigned long long>(recv_spec.total_bytes()));

    bool strided = !send_spec.is_contiguous() ||
                   !recv_spec.is_contiguous();
    TraceEvent ev;
    ev.op = strided ? TraceOp::put_stride : TraceOp::put;
    ev.peer = dst;
    ev.bytes = send_spec.total_bytes();
    ev.items = std::max(send_spec.count, recv_spec.count);
    ev.ack = ack;
    ev.sendFlagAddr = send_flag;
    ev.recvFlagAddr = recv_flag;
    trace(ev);

    if (strided)
        ++ctxStats.putStrides;
    else
        ++ctxStats.puts;
    ctxStats.putBytes += send_spec.total_bytes();

    hw::Command cmd;
    cmd.kind = hw::CommandKind::put;
    cmd.dst = dst;
    cmd.raddr = raddr;
    cmd.laddr = laddr;
    cmd.sendFlag = send_flag;
    cmd.recvFlag = recv_flag;
    cmd.localStride = send_spec;
    cmd.remoteStride = recv_spec;
    issue(std::move(cmd));

    // "The program issues a GET operation after the PUT operation,
    // and the program uses the GET reply packet for acknowledgment"
    // — in-order T-net delivery makes the reply imply PUT receipt.
    if (ack)
        issue_ack_probe(dst);
}

void
Context::get(CellId dst, Addr raddr, Addr laddr, std::uint32_t size,
             Addr send_flag, Addr recv_flag)
{
    get_stride(dst, raddr, laddr, send_flag, recv_flag,
               net::StrideSpec::contiguous(size),
               net::StrideSpec::contiguous(size));
}

void
Context::get_stride(CellId dst, Addr raddr, Addr laddr,
                    Addr send_flag, Addr recv_flag,
                    net::StrideSpec send_spec,
                    net::StrideSpec recv_spec)
{
    if (send_spec.total_bytes() != recv_spec.total_bytes())
        fatal("get_stride: send pattern (%llu B) != recv pattern "
              "(%llu B)",
              static_cast<unsigned long long>(send_spec.total_bytes()),
              static_cast<unsigned long long>(recv_spec.total_bytes()));

    bool strided = !send_spec.is_contiguous() ||
                   !recv_spec.is_contiguous();
    TraceEvent ev;
    ev.op = strided ? TraceOp::get_stride : TraceOp::get;
    ev.peer = dst;
    ev.bytes = send_spec.total_bytes();
    ev.items = std::max(send_spec.count, recv_spec.count);
    ev.sendFlagAddr = send_flag;
    ev.recvFlagAddr = recv_flag;
    trace(ev);

    if (strided)
        ++ctxStats.getStrides;
    else
        ++ctxStats.gets;
    ctxStats.getBytes += send_spec.total_bytes();

    hw::Command cmd;
    cmd.kind = hw::CommandKind::get;
    cmd.dst = dst;
    cmd.raddr = raddr;
    cmd.laddr = laddr;
    cmd.sendFlag = send_flag; // bumps at the data owner
    cmd.recvFlag = recv_flag; // bumps here when data lands
    cmd.remoteStride = send_spec; // gather pattern at the owner
    cmd.localStride = recv_spec;  // scatter pattern here
    issue(std::move(cmd));
}

void
Context::put_stride_2d(CellId dst, Addr raddr, Addr laddr, bool ack,
                       Addr send_flag, Addr recv_flag,
                       net::StrideSpec send_spec,
                       net::StrideSpec recv_spec,
                       std::uint32_t planes, Addr send_plane_pitch,
                       Addr recv_plane_pitch)
{
    for (std::uint32_t k = 0; k < planes; ++k) {
        // Only the last plane carries the acknowledgement: the
        // in-order T-net makes it cover the whole burst.
        bool last = k + 1 == planes;
        put_stride(dst, raddr + recv_plane_pitch * k,
                   laddr + send_plane_pitch * k, ack && last,
                   last ? send_flag : no_flag, recv_flag, send_spec,
                   recv_spec);
    }
}

// -- runtime direct remote access ---------------------------------------

bool
Context::timed_get(CellId dst, Addr raddr, Addr laddr,
                   std::uint32_t size, Tick timeout, int max_retries)
{
    // A dedicated completion flag would burn heap per call; reuse a
    // per-context scratch flag and wait for its next value. Every
    // reissue targets the same flag, so any one surviving reply
    // satisfies the wait; duplicates merely overshoot it.
    Addr f = scratch_flag();
    std::uint32_t before = flag(f);
    for (int attempt = 0; attempt <= max_retries; ++attempt) {
        get(dst, raddr, laddr, size, no_flag, f);
        if (wait_flag_for(f, before + 1,
                          machine.sim().now() + timeout))
            return true;
    }
    return false;
}

void
Context::write_remote(CellId dst, Addr raddr, Addr laddr,
                      std::uint32_t size)
{
    const hw::RetryPolicy &retry = machine.config().retry;
    if (!retry.enabled()) {
        put(dst, raddr, laddr, size, no_flag, no_flag, true);
        wait_all_acks();
        return;
    }

    std::vector<std::uint8_t> want(size);
    peek(laddr, want);
    Addr check = verify_buffer(size);
    std::vector<std::uint8_t> got(size);
    for (int attempt = 0; attempt <= retry.maxRetries; ++attempt) {
        // Exponential backoff: later attempts wait longer before
        // declaring the transfer lost, up to the policy cap.
        Tick timeout = us_to_ticks(retry.attempt_timeout_us(attempt));
        put(dst, raddr, laddr, size, no_flag, no_flag, true);
        if (!wait_all_acks_for(machine.sim().now() + timeout))
            resync_acks();
        // The acknowledge probe alone cannot prove delivery under
        // message loss — the probe's round trip may survive while the
        // PUT it follows was dropped. Read the bytes back and compare;
        // only the remote memory itself is authoritative.
        if (timed_get(dst, raddr, check, size, timeout, 0)) {
            peek(check, got);
            if (got == want)
                return;
        }
    }
    machine.note_retry_giveup();
    throw CommError(
        CommError::Kind::timeout, cellId, dst,
        strprintf("cell %d: write_remote(%u B to cell %d at %#llx) "
                  "unacknowledged after %d attempts\n%s",
                  cellId, size, dst,
                  static_cast<unsigned long long>(raddr),
                  retry.maxRetries + 1,
                  machine.postmortem().c_str()));
}

void
Context::read_remote(CellId dst, Addr raddr, Addr laddr,
                     std::uint32_t size)
{
    const hw::RetryPolicy &retry = machine.config().retry;
    if (!retry.enabled()) {
        Addr f = scratch_flag();
        std::uint32_t before = flag(f);
        get(dst, raddr, laddr, size, no_flag, f);
        wait_flag(f, before + 1);
        return;
    }

    for (int attempt = 0; attempt <= retry.maxRetries; ++attempt)
        if (timed_get(dst, raddr, laddr, size,
                      us_to_ticks(retry.attempt_timeout_us(attempt)),
                      0))
            return;
    machine.note_retry_giveup();
    throw CommError(
            CommError::Kind::timeout, cellId, dst,
            strprintf("cell %d: read_remote(%u B from cell %d at "
                      "%#llx) got no reply after %d attempts\n%s",
                      cellId, size, dst,
                      static_cast<unsigned long long>(raddr),
                      retry.maxRetries + 1,
                      machine.postmortem().c_str()));
}

// -- completion ----------------------------------------------------------

std::uint32_t
Context::flag(Addr flag_addr) const
{
    return machine.cell(cellId).mc().read_flag(flag_addr);
}

void
Context::wait_flag(Addr flag_addr, std::uint32_t target)
{
    TraceEvent ev;
    ev.op = TraceOp::flag_wait;
    ev.waitTarget = target;
    ev.recvFlagAddr = flag_addr;
    trace(ev);

    check_alive();
    proc.delay(us_to_ticks(machine.config().timings.flagCheckUs));
    Tick begin = machine.sim().now();
    Tick deadline = watchdog_deadline();
    bool waited = false;
    if (deadline == 0) {
        while (flag(flag_addr) < target) {
            waited = true;
            proc.wait(cell().mc().flag_cond());
        }
    } else {
        machine.set_wait(cellId, "wait_flag", flag_addr, target);
        while (flag(flag_addr) < target) {
            waited = true;
            if (!proc.wait_until(cell().mc().flag_cond(), deadline) &&
                flag(flag_addr) < target)
                watchdog_fire("wait_flag", flag_addr, target);
        }
        machine.clear_wait(cellId);
    }
    if (waited) {
        if (auto *tr = machine.tracer())
            tr->span(cellId, "wait", "wait_flag", begin);
    }
}

void
Context::wait_all_acks()
{
    TraceEvent ev;
    ev.op = TraceOp::ack_wait;
    // Replay models PUT-acknowledge round trips only; collective-
    // internal and DSM acknowledgements are folded into their own
    // cost models.
    ev.waitTarget = tracedPutAcks;
    trace(ev);

    check_alive();
    proc.delay(us_to_ticks(machine.config().timings.flagCheckUs));
    Tick begin = machine.sim().now();
    Tick deadline = watchdog_deadline();
    bool waited = false;
    std::uint64_t target = ackBase + acksOutstanding;
    if (deadline == 0) {
        while (cell().msc().ack_count() < target) {
            waited = true;
            proc.wait(cell().msc().ack_cond());
        }
    } else {
        machine.set_wait(cellId, "wait_acks", no_flag, target);
        while (cell().msc().ack_count() < target) {
            waited = true;
            if (!proc.wait_until(cell().msc().ack_cond(), deadline) &&
                cell().msc().ack_count() < target)
                watchdog_fire("wait_acks", no_flag, target);
        }
        machine.clear_wait(cellId);
    }
    if (waited) {
        if (auto *tr = machine.tracer())
            tr->span(cellId, "wait", "wait_acks", begin);
    }
}

bool
Context::wait_flag_for(Addr flag_addr, std::uint32_t target,
                       Tick deadline)
{
    proc.delay(us_to_ticks(machine.config().timings.flagCheckUs));
    while (flag(flag_addr) < target) {
        if (!proc.wait_until(cell().mc().flag_cond(), deadline))
            return flag(flag_addr) >= target;
    }
    return true;
}

bool
Context::wait_all_acks_for(Tick deadline)
{
    proc.delay(us_to_ticks(machine.config().timings.flagCheckUs));
    std::uint64_t target = ackBase + acksOutstanding;
    while (cell().msc().ack_count() < target) {
        if (!proc.wait_until(cell().msc().ack_cond(), deadline))
            return cell().msc().ack_count() >= target;
    }
    return true;
}

void
Context::resync_acks()
{
    ackBase = cell().msc().ack_count();
    acksOutstanding = 0;
}

// -- distributed shared memory -------------------------------------------

std::uint32_t
Context::remote_load_u32(CellId dst, Addr raddr)
{
    check_alive();
    proc.delay(
        us_to_ticks(machine.config().timings.remoteAccessIssueUs));
    std::uint64_t token = cell().msc().issue_remote_load(dst, raddr, 4);
    std::vector<std::uint8_t> data;
    wait_load_reply(token, raddr, data);
    std::uint32_t v = 0;
    std::memcpy(&v, data.data(), 4);
    return v;
}

std::uint64_t
Context::remote_load_u64(CellId dst, Addr raddr)
{
    check_alive();
    proc.delay(
        us_to_ticks(machine.config().timings.remoteAccessIssueUs));
    std::uint64_t token = cell().msc().issue_remote_load(dst, raddr, 8);
    std::vector<std::uint8_t> data;
    wait_load_reply(token, raddr, data);
    std::uint64_t v = 0;
    std::memcpy(&v, data.data(), 8);
    return v;
}

void
Context::wait_load_reply(std::uint64_t token, Addr raddr,
                         std::vector<std::uint8_t> &data)
{
    Tick deadline = watchdog_deadline();
    if (deadline != 0)
        machine.set_wait(cellId, "remote_load", raddr, token);
    while (!cell().msc().take_load_reply(token, data)) {
        if (deadline == 0) {
            proc.wait(cell().msc().load_cond());
        } else if (!proc.wait_until(cell().msc().load_cond(),
                                    deadline)) {
            if (cell().msc().take_load_reply(token, data))
                break;
            watchdog_fire("remote_load", raddr, token);
        }
    }
    if (deadline != 0)
        machine.clear_wait(cellId);
}

void
Context::remote_store_u32(CellId dst, Addr raddr, std::uint32_t v)
{
    check_alive();
    proc.delay(
        us_to_ticks(machine.config().timings.remoteAccessIssueUs));
    std::vector<std::uint8_t> data(4);
    std::memcpy(data.data(), &v, 4);
    ++acksOutstanding;
    cell().msc().issue_remote_store(dst, raddr, std::move(data));
}

void
Context::remote_store_u64(CellId dst, Addr raddr, std::uint64_t v)
{
    check_alive();
    proc.delay(
        us_to_ticks(machine.config().timings.remoteAccessIssueUs));
    std::vector<std::uint8_t> data(8);
    std::memcpy(data.data(), &v, 8);
    ++acksOutstanding;
    cell().msc().issue_remote_store(dst, raddr, std::move(data));
}

Addr
Context::shared_addr(CellId cell, Addr local) const
{
    return machine.dsm().encode(cell, local);
}

std::uint32_t
Context::shared_load_u32(Addr global)
{
    auto target = machine.dsm().decode(global);
    if (!target)
        fatal("cell %d: %#llx is not a shared-space address", cellId,
              static_cast<unsigned long long>(global));
    if (target->cell == cellId)
        return peek_u32(target->localAddr);
    return remote_load_u32(target->cell, target->localAddr);
}

void
Context::shared_store_u32(Addr global, std::uint32_t v)
{
    auto target = machine.dsm().decode(global);
    if (!target)
        fatal("cell %d: %#llx is not a shared-space address", cellId,
              static_cast<unsigned long long>(global));
    if (target->cell == cellId) {
        poke_u32(target->localAddr, v);
        return;
    }
    remote_store_u32(target->cell, target->localAddr, v);
}

// -- B-net broadcast --------------------------------------------------------

void
Context::broadcast(CellId root, Addr laddr, std::uint32_t size,
                   Addr recv_flag)
{
    TraceEvent ev;
    ev.op = TraceOp::bcast;
    ev.peer = root;
    ev.bytes = size;
    ev.recvFlagAddr = recv_flag;
    trace(ev);

    if (cellId != root)
        return; // receivers synchronize on the flag

    // The B-net is driven like a PUT: parameters plus payload gather.
    Tick t0 = machine.sim().now();
    proc.delay(us_to_ticks(machine.config().timings.enqueueUs));
    std::vector<std::uint8_t> payload(size);
    peek(laddr, payload);

    net::Message msg;
    msg.kind = net::MsgKind::broadcast;
    msg.src = cellId;
    msg.raddr = laddr;
    msg.destFlag = recv_flag;
    msg.payload = std::move(payload);
    if ((msg.traceId = machine.spans().new_trace()) != 0)
        machine.spans().record(cellId, msg.traceId,
                               obs::SpanStage::issue, t0,
                               machine.sim().now(),
                               obs::SpanOp::bcast);
    machine.bnet().broadcast(std::move(msg));
}

// -- SEND/RECEIVE ---------------------------------------------------------

void
Context::send(CellId dst, std::int32_t tag, Addr laddr,
              std::uint32_t size)
{
    TraceEvent ev;
    ev.op = TraceOp::send;
    ev.peer = dst;
    ev.bytes = size;
    trace(ev);
    ++ctxStats.sends;

    hw::Command cmd;
    cmd.kind = hw::CommandKind::send;
    cmd.dst = dst;
    cmd.laddr = laddr;
    cmd.tag = tag;
    cmd.localStride = net::StrideSpec::contiguous(size);
    issue(std::move(cmd));
}

std::uint32_t
Context::recv(CellId src, std::int32_t tag, Addr laddr,
              std::uint32_t max_size)
{
    check_alive();
    ++ctxStats.recvs;

    // RECEIVE searches the ring buffer, then copies to the user area
    // — the intrinsic SEND/RECEIVE overhead (Section 1.3).
    proc.delay(us_to_ticks(machine.config().timings.receiveSearchUs));
    hw::SendRecord rec =
        ring_take_guarded(src, tag, /*in_place=*/false, "recv");
    if (rec.payload.size() > max_size)
        fatal("cell %d: received %zu bytes into a %u-byte area",
              cellId, rec.payload.size(), max_size);
    proc.delay(us_to_ticks(
        machine.config().timings.receiveCopyPerByteUs *
        static_cast<double>(rec.payload.size())));
    poke(laddr, rec.payload);
    std::uint32_t got =
        static_cast<std::uint32_t>(rec.payload.size());
    // The user copy is done; the SEND's buffer goes home to the pool.
    cell().msc().recycle_payload(std::move(rec.payload));

    // Recorded at exit so the resolved source and size are known;
    // replay matches receives against arrivals by source FIFO.
    TraceEvent ev;
    ev.op = TraceOp::recv;
    ev.peer = rec.src;
    ev.bytes = got;
    trace(ev);
    return got;
}

// -- computation -----------------------------------------------------------

void
Context::compute_us(double us)
{
    if (us < 0)
        fatal("negative compute time");
    TraceEvent ev;
    ev.op = TraceOp::compute;
    ev.computeUs = us;
    trace(ev);
    proc.delay(us_to_ticks(us));
}

void
Context::compute_flops(double flops)
{
    // MFLOPS = flops per microsecond.
    compute_us(flops / machine.config().mflopsPerCell);
}

} // namespace ap::core
