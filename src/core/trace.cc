#include "core/trace.hh"

namespace ap::core
{

const char *
to_string(TraceOp op)
{
    switch (op) {
      case TraceOp::compute:
        return "compute";
      case TraceOp::put:
        return "put";
      case TraceOp::put_stride:
        return "puts";
      case TraceOp::get:
        return "get";
      case TraceOp::get_stride:
        return "gets";
      case TraceOp::send:
        return "send";
      case TraceOp::recv:
        return "recv";
      case TraceOp::barrier:
        return "barrier";
      case TraceOp::gop:
        return "gop";
      case TraceOp::vgop:
        return "vgop";
      case TraceOp::bcast:
        return "bcast";
      case TraceOp::flag_wait:
        return "flag_wait";
      case TraceOp::ack_wait:
        return "ack_wait";
    }
    return "?";
}

bool
trace_op_from_string(const std::string &s, TraceOp &out)
{
    static const struct
    {
        const char *name;
        TraceOp op;
    } table[] = {
        {"compute", TraceOp::compute},
        {"put", TraceOp::put},
        {"puts", TraceOp::put_stride},
        {"get", TraceOp::get},
        {"gets", TraceOp::get_stride},
        {"send", TraceOp::send},
        {"recv", TraceOp::recv},
        {"barrier", TraceOp::barrier},
        {"gop", TraceOp::gop},
        {"vgop", TraceOp::vgop},
        {"bcast", TraceOp::bcast},
        {"flag_wait", TraceOp::flag_wait},
        {"ack_wait", TraceOp::ack_wait},
    };
    for (const auto &e : table) {
        if (s == e.name) {
            out = e.op;
            return true;
        }
    }
    return false;
}

std::uint64_t
Trace::total_events() const
{
    std::uint64_t n = 0;
    for (const auto &t : timelines)
        n += t.size();
    return n;
}

} // namespace ap::core
