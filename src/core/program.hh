/**
 * @file
 * The SPMD program runner.
 *
 * run_spmd() plays the role of the AP1000+'s host + operating system:
 * it loads the same program body onto every cell (each on its own
 * fiber), runs the machine's event kernel until everything drains,
 * and reports per-cell completion times. A body blocked forever (a
 * flag that never reaches its target, a barrier a cell never enters)
 * is detected as deadlock, not an infinite loop.
 */

#ifndef AP_CORE_PROGRAM_HH
#define AP_CORE_PROGRAM_HH

#include <functional>
#include <string>
#include <vector>

#include "base/types.hh"
#include "core/context.hh"
#include "core/trace.hh"
#include "hw/machine.hh"

namespace ap::core
{

/** Outcome of one SPMD run. */
struct SpmdResult
{
    /** Simulated tick when the last cell's body returned. */
    Tick finishTick = 0;
    /** Per-cell body completion ticks. */
    std::vector<Tick> cellFinish;
    /** Per-cell ticks spent blocked (idle time). */
    std::vector<Tick> cellBlocked;
    /** True when some cell never finished (diagnostics in stuck). */
    bool deadlock = false;
    /** Names of processes that never finished. */
    std::vector<std::string> stuck;
    /**
     * Communication errors, one entry per cell whose body ended with
     * an uncaught CommError (hardened runtime paths under a fault
     * plan). The cell stops cleanly — the machine keeps draining —
     * and the error is reported here instead of hanging the run.
     */
    std::vector<std::string> errors;
    /**
     * Cells declared fail-stop during the run (FaultPlan::kills). A
     * dead cell's unfinished body or cell_failed CommError is expected
     * — it lands here instead of errors/stuck, so a run where only
     * killed cells misbehave still counts as passed.
     */
    std::vector<CellId> failedCells;
    bool failed() const { return deadlock || !errors.empty(); }
    /** Wall-clock of the run in microseconds of simulated time. */
    double finish_us() const { return ticks_to_us(finishTick); }
};

/** The body every cell executes. */
using SpmdBody = std::function<void(Context &)>;

/**
 * Run @p body on every cell of @p machine.
 *
 * @param machine the functional machine (its simulator advances)
 * @param body the per-cell program
 * @param trace optional probe sink; when given it is resized to the
 *              machine's cell count and every Context operation
 *              appends an event
 * @return completion report
 */
SpmdResult run_spmd(hw::Machine &machine, const SpmdBody &body,
                    Trace *trace = nullptr);

} // namespace ap::core

#endif // AP_CORE_PROGRAM_HH
