/**
 * @file
 * Message-level trace format — the interchange between the functional
 * machine and MLSim.
 *
 * The paper instrumented the AP1000's communication/synchronization
 * libraries and interrupt service routines with probes and stored
 * events "along with time and message information" (Section 5). Our
 * probes sit at the same level: every Context operation (the
 * communication library) emits one event. MLSim replays these under a
 * machine parameter file.
 */

#ifndef AP_CORE_TRACE_HH
#define AP_CORE_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"

namespace ap::core
{

/** Operation classes — the columns of the paper's Table 3. */
enum class TraceOp : std::uint8_t
{
    compute,   ///< processor work for a given time
    put,       ///< point-to-point PUT
    put_stride,///< PUT with stride data transfer (PUTS)
    get,       ///< point-to-point GET
    get_stride,///< GET with stride data transfer (GETS)
    send,      ///< SEND (ring-buffer message)
    recv,      ///< RECEIVE (blocking search + copy)
    barrier,   ///< barrier synchronization (Sync)
    gop,       ///< global operation, scalar (Gop)
    vgop,      ///< global operation, vector (V Gop)
    bcast,     ///< B-net broadcast (data distribution)
    flag_wait, ///< wait for a flag to reach a value
    ack_wait,  ///< wait for outstanding PUT acknowledgements
};

/** @return short printable name of an op (trace file mnemonic). */
const char *to_string(TraceOp op);

/** Parse a trace mnemonic; returns false on unknown names. */
bool trace_op_from_string(const std::string &s, TraceOp &out);

/** One probe record. */
struct TraceEvent
{
    TraceOp op = TraceOp::compute;
    /** functional-machine timestamp at the probe (ns). */
    Tick at = 0;
    /** peer cell (put/get/send: destination; recv: source). */
    CellId peer = invalid_cell;
    /** payload bytes (data ops) or vector bytes (vgop). */
    std::uint64_t bytes = 0;
    /** stride item count (stride ops; 1 otherwise). */
    std::uint32_t items = 1;
    /** computation duration in microseconds (compute only). */
    double computeUs = 0.0;
    /** PUT requested an acknowledgement. */
    bool ack = false;
    /**
     * Wait semantics. flag_wait: wait until the flag at
     * @ref recvFlagAddr reaches waitTarget. ack_wait: wait until
     * waitTarget acknowledged PUTs have completed their round trip.
     */
    std::uint64_t waitTarget = 0;
    /** put/get: the send-flag address (0 = none). */
    Addr sendFlagAddr = 0;
    /** put/get: the recv-flag address; flag_wait: the waited flag. */
    Addr recvFlagAddr = 0;
    /** Issued by the language runtime (charges RTS time in MLSim). */
    bool viaRts = false;
};

/** The whole machine's trace: one timeline per cell. */
class Trace
{
  public:
    Trace() = default;

    /** @param cells number of timelines. */
    explicit Trace(int cells) : timelines(static_cast<std::size_t>(cells)) {}

    /** Number of cells traced. */
    int cells() const { return static_cast<int>(timelines.size()); }

    /** Append an event to @p cell's timeline. */
    void
    record(CellId cell, TraceEvent ev)
    {
        timelines[static_cast<std::size_t>(cell)].push_back(ev);
    }

    /** One cell's timeline. */
    const std::vector<TraceEvent> &
    timeline(CellId cell) const
    {
        return timelines[static_cast<std::size_t>(cell)];
    }

    std::vector<TraceEvent> &
    timeline(CellId cell)
    {
        return timelines[static_cast<std::size_t>(cell)];
    }

    /** Total events across all cells. */
    std::uint64_t total_events() const;

  private:
    std::vector<std::vector<TraceEvent>> timelines;
};

} // namespace ap::core

#endif // AP_CORE_TRACE_HH
