#include "core/program.hh"

#include <memory>
#include <mutex>

#include "base/logging.hh"

namespace ap::core
{

SpmdResult
run_spmd(hw::Machine &machine, const SpmdBody &body, Trace *trace)
{
    int n = machine.size();
    if (trace && trace->cells() != n)
        *trace = Trace(n);

    net::Snet::ContextId all_barrier = machine.snet().create_context();

    SpmdResult result;
    result.cellFinish.assign(static_cast<std::size_t>(n), 0);
    result.cellBlocked.assign(static_cast<std::size_t>(n), 0);

    std::vector<std::unique_ptr<sim::Process>> procs(
        static_cast<std::size_t>(n));
    std::vector<std::unique_ptr<Context>> contexts(
        static_cast<std::size_t>(n));
    // Cell fibers on different shards may fail concurrently.
    std::mutex errMutex;

    for (int i = 0; i < n; ++i) {
        auto idx = static_cast<std::size_t>(i);
        procs[idx] = std::make_unique<sim::Process>(
            machine.sim(), strprintf("cell%d", i),
            [&, i](sim::Process &p) {
                // CommError must be caught on this side of the fiber
                // boundary: exceptions cannot cross swapcontext.
                try {
                    body(*contexts[static_cast<std::size_t>(i)]);
                } catch (const CommError &e) {
                    // A fail-stop cell's own demise is not a program
                    // error; its fate is reported via failedCells.
                    if (!machine.cell_failed(i)) {
                        std::lock_guard<std::mutex> lock(errMutex);
                        result.errors.push_back(e.what());
                    }
                }
                result.cellFinish[static_cast<std::size_t>(i)] =
                    p.simulator().now();
            });
        contexts[idx] = std::make_unique<Context>(
            machine, i, *procs[idx], all_barrier, trace);
        // Pin the cell's fiber to its own shard under the sharded
        // kernel (resumes, delays and watchdogs all follow).
        procs[idx]->set_affinity(i);
        procs[idx]->start(machine.sim().now());
    }

    machine.run_to_completion();

    for (int i = 0; i < n; ++i) {
        auto idx = static_cast<std::size_t>(i);
        result.cellBlocked[idx] = procs[idx]->blocked_ticks();
        if (machine.cell_failed(i)) {
            result.failedCells.push_back(i);
        } else if (!procs[idx]->finished()) {
            result.deadlock = true;
            result.stuck.push_back(procs[idx]->name());
        }
        result.finishTick =
            std::max(result.finishTick, result.cellFinish[idx]);
    }

    if (result.deadlock) {
        warn("SPMD run deadlocked: %zu of %d cells never finished "
             "(first: %s)",
             result.stuck.size(), n, result.stuck.front().c_str());
    }

    return result;
}

} // namespace ap::core
