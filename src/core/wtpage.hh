/**
 * @file
 * Write-through pages (Section 4.2).
 *
 * "The AP1000+ supports so called write through page to efficiently
 * execute ... shared memory programming. This mechanism uses part of
 * local memory as a cache for distributed shared memory space, and
 * enables the replacement of remote accesses with local accesses."
 * The paper defers details; this is our implementation of that
 * mechanism, consistent with the machine's stated philosophy of
 * "message passing based machines with added software cache
 * coherence":
 *
 *  - reads of remote shared memory are served from a local page copy
 *    when present; a miss fetches the whole page with one GET;
 *  - writes go through: the local copy (if any) is updated and the
 *    word is stored remotely (auto-acked hardware remote store);
 *  - coherence is software-managed: other cells' writes do NOT
 *    invalidate your copies. Programs invalidate at synchronization
 *    points (typically right after a barrier), exactly like the
 *    era's software-DSM systems.
 *
 * The cache holds a bounded number of page frames with FIFO
 * replacement, carved from the cell's own heap.
 */

#ifndef AP_CORE_WTPAGE_HH
#define AP_CORE_WTPAGE_HH

#include <cstdint>
#include <deque>
#include <map>
#include <span>

#include "core/context.hh"

namespace ap::core
{

/** Write-through cache statistics. */
struct WtStats
{
    std::uint64_t readHits = 0;
    std::uint64_t readMisses = 0;  ///< page fetches over the network
    std::uint64_t writeThroughs = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t evictions = 0;
};

/** A per-cell write-through page cache over remote memories. */
class WtCache
{
  public:
    /** Cached page size: the MMU's small page (4 KB). */
    static constexpr std::uint32_t page_bytes = 4096;

    /**
     * @param ctx the owning cell's context
     * @param frames page frames to dedicate (heap memory is
     *               allocated immediately, symmetric across cells)
     */
    WtCache(Context &ctx, int frames);

    /**
     * Read @p out.size() bytes of cell @p owner's memory at logical
     * @p raddr, through the cache. The access must not cross a page
     * boundary. Blocking on a miss (one GET round trip).
     */
    void read(CellId owner, Addr raddr, std::span<std::uint8_t> out);

    /** Typed convenience reads. */
    double read_f64(CellId owner, Addr raddr);
    std::uint32_t read_u32(CellId owner, Addr raddr);

    /**
     * Write-through store of @p data (at most 8 bytes) to cell
     * @p owner at @p raddr: updates the local copy when cached and
     * issues the hardware remote store. Non-blocking; completion via
     * Context::wait_all_acks().
     */
    void write(CellId owner, Addr raddr,
               std::span<const std::uint8_t> data);

    /** Typed convenience writes. */
    void write_f64(CellId owner, Addr raddr, double v);
    void write_u32(CellId owner, Addr raddr, std::uint32_t v);

    /** Drop one cached page (no-op when absent). */
    void invalidate(CellId owner, Addr raddr);

    /** Drop every cached page (the post-barrier coherence point). */
    void invalidate_all();

    /** @return true when the page containing @p raddr is cached. */
    bool cached(CellId owner, Addr raddr) const;

    const WtStats &stats() const { return wtStats; }

  private:
    /** Key: (owner cell, virtual page number). */
    using PageKey = std::pair<CellId, Addr>;

    static PageKey
    key_of(CellId owner, Addr raddr)
    {
        return {owner, raddr / page_bytes};
    }

    /** Local frame holding the page, fetching on miss. */
    Addr frame_for(CellId owner, Addr raddr);

    Context &ctx;
    int numFrames;
    std::deque<Addr> freeFrames;
    std::map<PageKey, Addr> resident;
    std::deque<PageKey> fifo;
    WtStats wtStats;
};

} // namespace ap::core

#endif // AP_CORE_WTPAGE_HH
