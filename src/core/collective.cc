/**
 * @file
 * Barriers and global reductions (Sections 2.3, 4.5).
 *
 * - All-cell barriers ride the hardware S-net.
 * - Scalar all-cell reductions use the communication registers with
 *   a fold + recursive-doubling + unfold tree: "sending data from
 *   communication registers to other communication registers can be
 *   performed with a simple store instruction", and the p-bits
 *   provide the store/execute/load synchronization.
 * - Group barriers and group reductions run in software over
 *   SEND/RECEIVE, as the paper prescribes for specific groups.
 * - Vector reductions use the ring-buffer pipeline: each cell sends
 *   its circulating contribution to the next cell's ring buffer and
 *   combines what arrives *in place*, avoiding the receive copy.
 */

#include <array>
#include <bit>
#include <cstring>
#include <memory>

#include "base/logging.hh"
#include "core/context.hh"

namespace ap::core
{

namespace
{

/** FNV-1a over group members: stable tag base per group identity. */
std::uint64_t
group_hash(const Group &g)
{
    std::uint64_t h = 1469598103934665603ull;
    for (CellId c : g.members()) {
        h ^= static_cast<std::uint64_t>(c);
        h *= 1099511628211ull;
    }
    return h;
}

/** Tag spaces: group collectives / vector reductions. */
constexpr std::int32_t group_tag_bit = 0x40000000;
constexpr std::int32_t vgop_tag_bit = 0x50000000;

/**
 * Scope guard emitting one collective-phase span on the cell's track,
 * covering the guarded scope even across early returns.
 */
class SpanGuard
{
  public:
    SpanGuard(hw::Machine &m, int track, const char *name)
        : machine(m), track(track), name(name),
          begin(m.sim().now())
    {
    }

    ~SpanGuard()
    {
        if (auto *tr = machine.tracer())
            tr->span(track, "collective", name, begin);
    }

  private:
    hw::Machine &machine;
    int track;
    const char *name;
    Tick begin;
};

/** Serialize a double into 8 bytes. */
std::array<std::uint8_t, 8>
pack_f64(double v)
{
    std::array<std::uint8_t, 8> a;
    std::memcpy(a.data(), &v, 8);
    return a;
}

/** Deserialize a double from a payload. */
double
unpack_f64(const std::vector<std::uint8_t> &p)
{
    double v;
    std::memcpy(&v, p.data(), 8);
    return v;
}

} // namespace

double
Context::combine(double a, double b, ReduceOp op) const
{
    switch (op) {
      case ReduceOp::sum:
        return a + b;
      case ReduceOp::min:
        return a < b ? a : b;
      case ReduceOp::max:
        return a > b ? a : b;
      case ReduceOp::prod:
        return a * b;
    }
    return a;
}

// -- communication-register exchange primitive ----------------------------

double
Context::commreg_exchange(CellId partner, int reg_index, double value)
{
    const auto &t = machine.config().timings;

    // Store my value to the partner's register pair: the registers
    // sit in shared space, so this is one hardware remote store.
    std::vector<std::uint8_t> data(8);
    std::memcpy(data.data(), &value, 8);
    proc.delay(us_to_ticks(t.remoteAccessIssueUs));
    ++acksOutstanding;
    cell().msc().issue_remote_store(
        partner,
        hw::Mc::commreg_base + static_cast<Addr>(reg_index) * 4,
        std::move(data));

    // Load my own pair; the p-bit retry stalls until data arrives.
    proc.delay(us_to_ticks(2 * t.commRegAccessUs));
    std::uint32_t lo = cell().mc().regs().load(reg_index, proc);
    std::uint32_t hi = cell().mc().regs().load(reg_index + 1, proc);
    return std::bit_cast<double>(
        (static_cast<std::uint64_t>(hi) << 32) | lo);
}

// -- S-net barrier ---------------------------------------------------------

void
Context::barrier()
{
    check_alive();
    TraceEvent ev;
    ev.op = TraceOp::barrier;
    trace(ev);
    ++ctxStats.barriers;
    SpanGuard span(machine, cellId, "barrier");

    // The S-net releases as soon as every *live* member has arrived;
    // a barrier crossed while cells are dead is marked degraded.
    lastCollectiveDegraded = machine.any_failed();
    if (lastCollectiveDegraded)
        ++ctxStats.degradedCollectives;

    proc.delay(us_to_ticks(machine.config().timings.barrierIssueUs));

    // The release state is heap-owned by the S-net callback: if the
    // watchdog throws us out of the wait, a later release must not
    // touch a dead stack frame.
    struct Release
    {
        sim::Condition released;
        bool done = false;
    };
    auto rel = std::make_shared<Release>();
    machine.snet().arrive(allBarrier, cellId, [rel]() {
        rel->done = true;
        rel->released.notify_all();
    });
    Tick deadline = watchdog_deadline();
    if (deadline == 0) {
        while (!rel->done)
            proc.wait(rel->released);
        return;
    }
    machine.set_wait(cellId, "barrier", /*addr=*/0, /*target=*/0);
    while (!rel->done) {
        if (!proc.wait_until(rel->released, deadline) && !rel->done)
            watchdog_fire("barrier", /*addr=*/0, /*target=*/0);
    }
    machine.clear_wait(cellId);
}

// -- scalar all-cell reduction ----------------------------------------------

double
Context::allreduce(double value, ReduceOp op)
{
    TraceEvent ev;
    ev.op = TraceOp::gop;
    ev.bytes = 8;
    trace(ev);
    ++ctxStats.gops;
    SpanGuard span(machine, cellId, "allreduce");

    check_alive();
    if (machine.any_failed()) {
        // The commreg tree assumes a dense 0..p-1 cell space; with
        // fail-stop cells fall back to a software reduction over the
        // survivors and mark the result degraded.
        double v = group_reduce_impl(live_group(), value, op);
        lastCollectiveDegraded = true;
        ++ctxStats.degradedCollectives;
        return v;
    }
    lastCollectiveDegraded = false;

    int p = nprocs();
    if (p == 1)
        return value;

    // Two register banks alternate between consecutive reductions so
    // a fast cell's next reduction can never overwrite a value its
    // partner has not consumed yet. All-cell collectives are globally
    // ordered, so every cell agrees on the bank.
    int bank = (collectiveSeq++ % 2) ? 64 : 0;
    int me = cellId;

    int r = 1;
    while (r * 2 <= p)
        r *= 2;

    double v = value;
    const auto &t = machine.config().timings;

    if (me >= r) {
        // Fold my value into my low partner, then pick up the result.
        std::vector<std::uint8_t> data(8);
        std::memcpy(data.data(), &v, 8);
        proc.delay(us_to_ticks(t.remoteAccessIssueUs));
        ++acksOutstanding;
        cell().msc().issue_remote_store(
            me - r, hw::Mc::commreg_base + (bank + 0) * 4,
            std::move(data));

        proc.delay(us_to_ticks(2 * t.commRegAccessUs));
        std::uint32_t lo = cell().mc().regs().load(bank + 2, proc);
        std::uint32_t hi = cell().mc().regs().load(bank + 3, proc);
        return std::bit_cast<double>(
            (static_cast<std::uint64_t>(hi) << 32) | lo);
    }

    if (me + r < p) {
        proc.delay(us_to_ticks(2 * t.commRegAccessUs));
        std::uint32_t lo = cell().mc().regs().load(bank + 0, proc);
        std::uint32_t hi = cell().mc().regs().load(bank + 1, proc);
        double o = std::bit_cast<double>(
            (static_cast<std::uint64_t>(hi) << 32) | lo);
        v = combine(v, o, op);
    }

    int step = 0;
    for (int mask = 1; mask < r; mask <<= 1, ++step) {
        int partner = me ^ mask;
        int reg = bank + 4 + 2 * step;
        double o = commreg_exchange(partner, reg, v);
        v = combine(v, o, op);
    }

    if (me + r < p) {
        std::vector<std::uint8_t> data(8);
        std::memcpy(data.data(), &v, 8);
        proc.delay(us_to_ticks(t.remoteAccessIssueUs));
        ++acksOutstanding;
        cell().msc().issue_remote_store(
            me + r, hw::Mc::commreg_base + (bank + 2) * 4,
            std::move(data));
    }
    return v;
}

std::uint64_t
Context::allreduce_u64(std::uint64_t value, ReduceOp op)
{
    // Counts and indices fit a double exactly up to 2^53; the apps
    // stay far below that.
    double v = allreduce(static_cast<double>(value), op);
    return static_cast<std::uint64_t>(v + 0.5);
}

// -- group collectives over SEND/RECEIVE -------------------------------------

std::int32_t
Context::group_tag(const Group &group)
{
    std::uint64_t h = group_hash(group);
    std::uint32_t seq = groupSeq[h]++;
    return group_tag_bit |
           static_cast<std::int32_t>(((h * 131) + seq * 1031) &
                                     0x00FFFFFF);
}

double
Context::group_reduce(const Group &group, double value, ReduceOp op)
{
    check_alive();
    if (machine.any_failed()) {
        std::vector<CellId> live;
        for (CellId c : group.members())
            if (!machine.cell_failed(c))
                live.push_back(c);
        if (live.size() != group.members().size()) {
            double v = group_reduce_impl(Group(std::move(live)),
                                         value, op);
            lastCollectiveDegraded = true;
            ++ctxStats.degradedCollectives;
            return v;
        }
    }
    lastCollectiveDegraded = false;
    return group_reduce_impl(group, value, op);
}

double
Context::group_reduce_impl(const Group &group, double value,
                           ReduceOp op)
{
    int rank = group.rank_of(cellId);
    if (rank < 0)
        fatal("cell %d is not a member of this group", cellId);

    int p = group.size();
    if (p == 1)
        return value;

    // One tag base per (group, collective#); phases offset the tag so
    // fold/steps/unfold never collide. Early arrivals simply queue in
    // the ring buffer, so skewed cells are safe.
    std::int32_t tag0 = group_tag(group);
    auto phase_tag = [tag0](int phase) {
        return tag0 + (phase << 24);
    };

    int r = 1;
    while (r * 2 <= p)
        r *= 2;

    double v = value;

    if (rank >= r) {
        internal_send(group.at(rank - r), phase_tag(0), pack_f64(v));
        return unpack_f64(
            internal_recv(group.at(rank - r), phase_tag(1)).payload);
    }

    if (rank + r < p) {
        double o = unpack_f64(
            internal_recv(group.at(rank + r), phase_tag(0)).payload);
        v = combine(v, o, op);
    }

    int step = 0;
    for (int mask = 1; mask < r; mask <<= 1, ++step) {
        int partner = rank ^ mask;
        internal_send(group.at(partner), phase_tag(2 + step),
                      pack_f64(v));
        double o = unpack_f64(
            internal_recv(group.at(partner), phase_tag(2 + step))
                .payload);
        v = combine(v, o, op);
    }

    if (rank + r < p)
        internal_send(group.at(rank + r), phase_tag(1), pack_f64(v));

    return v;
}

void
Context::barrier_group(const Group &group)
{
    TraceEvent ev;
    ev.op = TraceOp::barrier;
    // Group identity rides in the trace so MLSim can rendezvous the
    // right subset: member count + a stable group hash.
    ev.waitTarget = static_cast<std::uint64_t>(group.size());
    ev.sendFlagAddr = group_hash(group);
    trace(ev);
    ++ctxStats.barriers;
    SpanGuard span(machine, cellId, "barrier_group");

    group_reduce(group, 0.0, ReduceOp::sum);
}

double
Context::allreduce_group(const Group &group, double value, ReduceOp op)
{
    TraceEvent ev;
    ev.op = TraceOp::gop;
    ev.bytes = 8;
    ev.waitTarget = static_cast<std::uint64_t>(group.size());
    ev.sendFlagAddr = group_hash(group);
    trace(ev);
    ++ctxStats.gops;
    SpanGuard span(machine, cellId, "allreduce_group");

    return group_reduce(group, value, op);
}

// -- vector reduction over the ring buffer ------------------------------------

void
Context::allreduce_vector(Addr vec, std::uint32_t count, ReduceOp op)
{
    TraceEvent ev;
    ev.op = TraceOp::vgop;
    ev.bytes = static_cast<std::uint64_t>(count) * 8;
    trace(ev);
    ++ctxStats.vgops;
    SpanGuard span(machine, cellId, "allreduce_vector");

    check_alive();
    int p = nprocs();
    CellId right = (cellId + 1) % p;
    CellId left = (cellId - 1 + p) % p;
    lastCollectiveDegraded = false;
    if (machine.any_failed()) {
        // Reform the ring over the survivors only.
        Group live = live_group();
        lastCollectiveDegraded = true;
        ++ctxStats.degradedCollectives;
        p = live.size();
        int rank = live.rank_of(cellId);
        right = live.at((rank + 1) % p);
        left = live.at((rank - 1 + p) % p);
    }
    if (p <= 1 || count == 0)
        return;

    std::uint32_t bytes = count * 8;

    // Host-side view of my accumulator.
    std::vector<std::uint8_t> circulating(bytes);
    peek(vec, circulating);
    std::vector<double> acc(count);
    std::memcpy(acc.data(), circulating.data(), bytes);

    std::int32_t tag0 =
        vgop_tag_bit | static_cast<std::int32_t>(
                           (collectiveSeq++ * 2081) & 0x00FFFFFF);

    // Ring pipeline: my contribution travels the whole ring; I
    // combine every contribution that passes through me. One tag
    // serves every step: the T-net is FIFO per source-destination
    // pair, so ring-buffer matching preserves step order.
    for (int s = 0; s < p - 1; ++s) {
        internal_send(right, tag0, circulating);

        hw::SendRecord rec = internal_recv(left, tag0);
        if (rec.payload.size() != bytes)
            panic("vgop step %d: expected %u bytes, got %zu", s,
                  bytes, rec.payload.size());

        std::vector<double> other(count);
        std::memcpy(other.data(), rec.payload.data(), bytes);
        for (std::uint32_t i = 0; i < count; ++i)
            acc[i] = combine(acc[i], other[i], op);
        // The elementwise combine is processor work.
        proc.delay(us_to_ticks(static_cast<double>(count) /
                               machine.config().mflopsPerCell));

        // Rotate buffers: the arriving record becomes the next
        // contribution and the spent one goes home to the pool.
        std::vector<std::uint8_t> spent = std::move(circulating);
        circulating = std::move(rec.payload);
        cell().msc().recycle_payload(std::move(spent));
    }
    cell().msc().recycle_payload(std::move(circulating));

    std::vector<std::uint8_t> raw(bytes);
    std::memcpy(raw.data(), acc.data(), bytes);
    poke(vec, raw);
}

} // namespace ap::core
