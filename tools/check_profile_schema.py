#!/usr/bin/env python3
"""Schema checks for the observability JSON artifacts (CI gate).

Three document kinds:

  profile   critical-path breakdown written by `ap_run --profile-json=F`
            and `bench_micro_putget --profile-out=F`
            (obs/critpath.hh: coverage, stages.<name>, ops.<name>)
  chrome    Chrome trace_event JSON written by the flight recorder
            (`--flight-dump=F`, `--span-trace-out=F`)
  timeline  perf-timeline JSON written by `--timeline-out=F`
            (obs/sampler.hh: series/level lists plus samples rows
            with strictly increasing t_us)
  sweep     parameterized sweep dataset written by `bench_sweep`
            (model/modelset.hh: points rows with strictly
            increasing x and per-point metric values)
  model     fitted scaling-law set written by `bench_sweep --fit`
            (one fitted term + envelope per metric)

Usage:
  check_profile_schema.py profile [--min-coverage=0.95] FILE...
  check_profile_schema.py chrome FILE...
  check_profile_schema.py timeline FILE...
  check_profile_schema.py sweep FILE...
  check_profile_schema.py model FILE...

Exit status 0 when every file conforms; 1 with a diagnostic per
violation otherwise. Standard library only.
"""

import json
import sys

STAGES = [
    "issue", "queue", "dma_send", "net", "dma_recv", "flag",
    "ring_deposit", "ring_receive", "retransmit", "barrier",
    "barrier_wait",
]


def fail(path, msg):
    print(f"{path}: {msg}", file=sys.stderr)
    return 1


def is_num(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def check_profile(path, doc, min_coverage):
    rc = 0
    for key in ("traces", "events", "end_to_end_us",
                "attributed_us", "coverage"):
        if not is_num(doc.get(key)):
            rc |= fail(path, f"missing numeric field '{key}'")
    cov = doc.get("coverage")
    if is_num(cov) and not -1e-9 <= cov <= 1.0 + 1e-9:
        rc |= fail(path, f"coverage {cov} outside [0, 1]")
    if is_num(cov) and cov < min_coverage:
        rc |= fail(
            path,
            f"coverage {cov:.3f} below required {min_coverage}")

    stages = doc.get("stages")
    if not isinstance(stages, dict):
        return rc | fail(path, "missing 'stages' object")
    for name in STAGES:
        st = stages.get(name)
        if not isinstance(st, dict):
            rc |= fail(path, f"stages.{name} missing")
            continue
        for key in ("us", "share", "events"):
            if not is_num(st.get(key)):
                rc |= fail(
                    path,
                    f"stages.{name}.{key} missing or non-numeric")

    ops = doc.get("ops")
    if not isinstance(ops, dict) or not ops:
        return rc | fail(path, "missing or empty 'ops' object")
    for name, op in ops.items():
        if not isinstance(op, dict):
            rc |= fail(path, f"ops.{name} is not an object")
            continue
        for key in ("traces", "end_to_end_us", "attributed_us",
                    "coverage"):
            if not is_num(op.get(key)):
                rc |= fail(
                    path, f"ops.{name}.{key} missing or non-numeric")
    return rc


def check_chrome(path, doc):
    rc = 0
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return rc | fail(path, "missing 'traceEvents' list")
    if not events:
        return rc | fail(path, "'traceEvents' is empty")
    seen_x = False
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            rc |= fail(path, f"traceEvents[{i}] is not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                rc |= fail(path, f"traceEvents[{i}] missing '{key}'")
        if ev.get("ph") == "X":
            seen_x = True
            for key in ("ts", "dur"):
                if not is_num(ev.get(key)):
                    rc |= fail(
                        path,
                        f"traceEvents[{i}] ('X') missing "
                        f"numeric '{key}'")
    if not seen_x:
        rc |= fail(path, "no complete ('X') span events")
    return rc


def check_timeline(path, doc):
    rc = 0
    if doc.get("kind") != "timeline":
        rc |= fail(path, "'kind' is not \"timeline\"")
    period = doc.get("period_us")
    if not is_num(period) or period <= 0:
        rc |= fail(path, "'period_us' missing or not positive")
    for key in ("taken", "dropped"):
        if not is_num(doc.get(key)):
            rc |= fail(path, f"missing numeric field '{key}'")

    series = doc.get("series")
    if (not isinstance(series, list) or not series or
            not all(isinstance(s, str) for s in series)):
        return rc | fail(
            path, "'series' missing, empty, or not all strings")
    level = doc.get("level")
    if (not isinstance(level, list) or len(level) != len(series) or
            not all(isinstance(b, bool) for b in level)):
        rc |= fail(
            path, "'level' missing or not booleans aligned "
                  "with 'series'")

    samples = doc.get("samples")
    if not isinstance(samples, list):
        return rc | fail(path, "missing 'samples' list")
    prev_t = None
    for i, row in enumerate(samples):
        if not isinstance(row, dict):
            rc |= fail(path, f"samples[{i}] is not an object")
            continue
        t = row.get("t_us")
        if not is_num(t):
            rc |= fail(path, f"samples[{i}].t_us missing")
        elif prev_t is not None and t <= prev_t:
            rc |= fail(
                path,
                f"samples[{i}].t_us {t} not after {prev_t}")
        if is_num(t):
            prev_t = t
        v = row.get("v")
        if (not isinstance(v, list) or len(v) != len(series) or
                not all(is_num(x) for x in v)):
            rc |= fail(
                path,
                f"samples[{i}].v missing or not {len(series)} "
                f"numbers")
    return rc


def check_sweep(path, doc):
    rc = 0
    if doc.get("kind") != "sweep":
        rc |= fail(path, "'kind' is not \"sweep\"")
    for key in ("sweep", "bench", "param", "unit"):
        if not isinstance(doc.get(key), str) or not doc.get(key):
            rc |= fail(path, f"missing string field '{key}'")
    points = doc.get("points")
    if not isinstance(points, list) or not points:
        return rc | fail(path, "missing or empty 'points' list")
    prev_x = None
    for i, row in enumerate(points):
        if not isinstance(row, dict):
            rc |= fail(path, f"points[{i}] is not an object")
            continue
        x = row.get("x")
        if not is_num(x):
            rc |= fail(path, f"points[{i}].x missing")
        elif prev_x is not None and x <= prev_x:
            rc |= fail(path, f"points[{i}].x {x} not after {prev_x}")
        if is_num(x):
            prev_x = x
        metrics = row.get("metrics")
        if (not isinstance(metrics, dict) or not metrics or
                not all(is_num(v) for v in metrics.values())):
            rc |= fail(
                path,
                f"points[{i}].metrics missing, empty, or "
                f"non-numeric")
        registry = row.get("registry")
        if registry is not None and (
                not isinstance(registry, dict) or
                not all(isinstance(v, int) and not isinstance(v, bool)
                        for v in registry.values())):
            rc |= fail(
                path, f"points[{i}].registry not integer-valued")
    return rc


def check_model(path, doc):
    rc = 0
    if doc.get("kind") != "model":
        rc |= fail(path, "'kind' is not \"model\"")
    for key in ("sweep", "bench", "param", "unit"):
        if not isinstance(doc.get(key), str) or not doc.get(key):
            rc |= fail(path, f"missing string field '{key}'")
    metrics = doc.get("metrics")
    if not isinstance(metrics, list) or not metrics:
        return rc | fail(path, "missing or empty 'metrics' list")
    for i, m in enumerate(metrics):
        if not isinstance(m, dict):
            rc |= fail(path, f"metrics[{i}] is not an object")
            continue
        name = m.get("metric", f"[{i}]")
        if not isinstance(m.get("metric"), str):
            rc |= fail(path, f"metrics[{i}].metric missing")
        if m.get("class") not in ("sim", "host", "count"):
            rc |= fail(path, f"metrics.{name}.class invalid")
        for key in ("c", "a", "exp", "r2", "adj_r2", "rmse_rel",
                    "cv_rmse_rel", "points", "xmin", "xmax",
                    "envelope"):
            if not is_num(m.get(key)):
                rc |= fail(
                    path,
                    f"metrics.{name}.{key} missing or non-numeric")
        if not isinstance(m.get("log"), int):
            rc |= fail(path, f"metrics.{name}.log not an integer")
        if not isinstance(m.get("constant"), bool):
            rc |= fail(path, f"metrics.{name}.constant not a bool")
        if not isinstance(m.get("formula"), str):
            rc |= fail(path, f"metrics.{name}.formula missing")
        env = m.get("envelope")
        if is_num(env) and env <= 0:
            rc |= fail(path, f"metrics.{name}.envelope not positive")
        if (is_num(m.get("xmin")) and is_num(m.get("xmax")) and
                m["xmin"] >= m["xmax"]):
            rc |= fail(path, f"metrics.{name}: xmin >= xmax")
    return rc


def main(argv):
    if len(argv) < 3 or argv[1] not in ("profile", "chrome",
                                        "timeline", "sweep",
                                        "model"):
        print(__doc__, file=sys.stderr)
        return 2
    kind = argv[1]
    min_coverage = 0.0
    files = []
    for arg in argv[2:]:
        if arg.startswith("--min-coverage="):
            min_coverage = float(arg.split("=", 1)[1])
        else:
            files.append(arg)
    if not files:
        print("no files given", file=sys.stderr)
        return 2

    rc = 0
    for path in files:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            rc |= fail(path, f"unreadable or invalid JSON: {e}")
            continue
        if not isinstance(doc, dict):
            rc |= fail(path, "top level is not an object")
            continue
        if kind == "profile":
            rc |= check_profile(path, doc, min_coverage)
        elif kind == "chrome":
            rc |= check_chrome(path, doc)
        elif kind == "sweep":
            rc |= check_sweep(path, doc)
        elif kind == "model":
            rc |= check_model(path, doc)
        else:
            rc |= check_timeline(path, doc)
        if rc == 0:
            print(f"{path}: ok ({kind})")
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
