#!/usr/bin/env python3
"""Schema checks for the span-profiler JSON artifacts (CI gate).

Two document kinds:

  profile  critical-path breakdown written by `ap_run --profile-json=F`
           and `bench_micro_putget --profile-out=F`
           (obs/critpath.hh: coverage, stages.<name>, ops.<name>)
  chrome   Chrome trace_event JSON written by the flight recorder
           (`--flight-dump=F`, `--span-trace-out=F`)

Usage:
  check_profile_schema.py profile [--min-coverage=0.95] FILE...
  check_profile_schema.py chrome FILE...

Exit status 0 when every file conforms; 1 with a diagnostic per
violation otherwise. Standard library only.
"""

import json
import sys

STAGES = [
    "issue", "queue", "dma_send", "net", "dma_recv", "flag",
    "ring_deposit", "ring_receive", "retransmit", "barrier",
]


def fail(path, msg):
    print(f"{path}: {msg}", file=sys.stderr)
    return 1


def is_num(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def check_profile(path, doc, min_coverage):
    rc = 0
    for key in ("traces", "events", "end_to_end_us",
                "attributed_us", "coverage"):
        if not is_num(doc.get(key)):
            rc |= fail(path, f"missing numeric field '{key}'")
    cov = doc.get("coverage")
    if is_num(cov) and not -1e-9 <= cov <= 1.0 + 1e-9:
        rc |= fail(path, f"coverage {cov} outside [0, 1]")
    if is_num(cov) and cov < min_coverage:
        rc |= fail(
            path,
            f"coverage {cov:.3f} below required {min_coverage}")

    stages = doc.get("stages")
    if not isinstance(stages, dict):
        return rc | fail(path, "missing 'stages' object")
    for name in STAGES:
        st = stages.get(name)
        if not isinstance(st, dict):
            rc |= fail(path, f"stages.{name} missing")
            continue
        for key in ("us", "share", "events"):
            if not is_num(st.get(key)):
                rc |= fail(
                    path,
                    f"stages.{name}.{key} missing or non-numeric")

    ops = doc.get("ops")
    if not isinstance(ops, dict) or not ops:
        return rc | fail(path, "missing or empty 'ops' object")
    for name, op in ops.items():
        if not isinstance(op, dict):
            rc |= fail(path, f"ops.{name} is not an object")
            continue
        for key in ("traces", "end_to_end_us", "attributed_us",
                    "coverage"):
            if not is_num(op.get(key)):
                rc |= fail(
                    path, f"ops.{name}.{key} missing or non-numeric")
    return rc


def check_chrome(path, doc):
    rc = 0
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return rc | fail(path, "missing 'traceEvents' list")
    if not events:
        return rc | fail(path, "'traceEvents' is empty")
    seen_x = False
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            rc |= fail(path, f"traceEvents[{i}] is not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                rc |= fail(path, f"traceEvents[{i}] missing '{key}'")
        if ev.get("ph") == "X":
            seen_x = True
            for key in ("ts", "dur"):
                if not is_num(ev.get(key)):
                    rc |= fail(
                        path,
                        f"traceEvents[{i}] ('X') missing "
                        f"numeric '{key}'")
    if not seen_x:
        rc |= fail(path, "no complete ('X') span events")
    return rc


def main(argv):
    if len(argv) < 3 or argv[1] not in ("profile", "chrome"):
        print(__doc__, file=sys.stderr)
        return 2
    kind = argv[1]
    min_coverage = 0.0
    files = []
    for arg in argv[2:]:
        if arg.startswith("--min-coverage="):
            min_coverage = float(arg.split("=", 1)[1])
        else:
            files.append(arg)
    if not files:
        print("no files given", file=sys.stderr)
        return 2

    rc = 0
    for path in files:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            rc |= fail(path, f"unreadable or invalid JSON: {e}")
            continue
        if not isinstance(doc, dict):
            rc |= fail(path, "top level is not an object")
            continue
        if kind == "profile":
            rc |= check_profile(path, doc, min_coverage)
        else:
            rc |= check_chrome(path, doc)
        if rc == 0:
            print(f"{path}: ok ({kind})")
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
