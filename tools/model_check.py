#!/usr/bin/env python3
"""Model-vs-measured divergence gate (CI).

Holds fresh SWEEP_*.json measurements (bench_sweep) against the
committed MODEL_*.json scaling laws (bench_sweep --fit, checked in
under bench/models/). Two checks per metric:

  envelope  every fresh point must predict within the model's
            envelope. "sim" and "count" metrics (deterministic given
            the seed) are held absolutely; "host" metrics (wall-clock
            rates that track machine speed) are first normalized by
            their smallest-x point, so only the *shape* is gated and
            a faster or slower CI machine cannot trip it.
  class     the fresh points are refitted over the same Extra-P term
            lattice as src/model/fit.cc; the refit's total growth
            across the committed domain must agree with the model's
            within --class-tol (factor). A metric that changed
            scaling class — linear turned quadratic — fails even
            when each point still squeaks inside the envelope.
            Needs >= 3 distinct fresh x values; skipped below that.
            Host metrics get twice the tolerance: their few-point
            refits chase machine noise, and the gate must not flake
            on a loaded CI runner.

Usage:
  model_check.py [--models-dir=DIR] [--class-tol=2.0] SWEEP_FILE...
  model_check.py --self-test

Exit 0 when every metric of every sweep conforms, 1 otherwise.
--self-test synthesizes passing and diverging datasets (including a
scaling-class regression inside a loose envelope) and verifies the
gate accepts and rejects them; it is CI's proof that the gate can
actually fail. Standard library only.
"""

import json
import math
import os
import sys
import tempfile

EXPONENTS = [-2.0, -1.5, -1.0, -0.75, -0.5, -0.25,
             0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 2.5, 3.0]
LOG_POWERS = [0, 1, 2]
TERM_ADVANTAGE = 1.05


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    return 1


# ----------------------------------------------------------------
# the fit mirror (same algorithm as src/model/fit.cc)
# ----------------------------------------------------------------

def term_eval(x, exp, log_pow):
    g = x ** exp
    if log_pow:
        g *= math.log2(x) ** log_pow
    return g


def scale_floor(pts):
    return max(1e-12, 1e-3 * max((abs(y) for _, y in pts),
                                 default=0.0))


def weighted_mean(pts, floor):
    sw = swy = 0.0
    for _, y in pts:
        w = 1.0 / max(abs(y), floor) ** 2
        sw += w
        swy += w * y
    return swy / sw if sw > 0 else 0.0


def solve_term(pts, exp, log_pow, floor):
    sw = swg = swgg = swy = swgy = 0.0
    for x, y in pts:
        g = term_eval(x, exp, log_pow)
        if not math.isfinite(g):
            return None
        w = 1.0 / max(abs(y), floor) ** 2
        sw += w
        swg += w * g
        swgg += w * g * g
        swy += w * y
        swgy += w * g * y
    det = sw * swgg - swg * swg
    if abs(det) <= 1e-12 * max(sw * swgg, swg * swg):
        return None
    c = (swy * swgg - swg * swgy) / det
    a = (sw * swgy - swg * swy) / det
    if not (math.isfinite(c) and math.isfinite(a)):
        return None
    return c, a


def rel_rmse(pts, pred, floor):
    if not pts:
        return 0.0
    s = sum(((pred(x) - y) / max(abs(y), floor)) ** 2
            for x, y in pts)
    return math.sqrt(s / len(pts))


def cv_rmse(pts, fit_fn, floor):
    """LOOCV: fit_fn(subset) -> predictor or None."""
    s = 0.0
    for k in range(len(pts)):
        rest = pts[:k] + pts[k + 1:]
        pred = fit_fn(rest)
        if pred is None:
            return math.inf
        x, y = pts[k]
        s += ((pred(x) - y) / max(abs(y), floor)) ** 2
    return math.sqrt(s / len(pts))


def refit(pts):
    """Mirror of fit_scaling(): returns a dict like a model metric."""
    floor = scale_floor(pts)
    c0 = weighted_mean(pts, floor)
    out = {"constant": True, "c": c0, "a": 0.0, "exp": 0.0, "log": 0}
    xs = sorted({x for x, _ in pts})
    const_rmse = rel_rmse(pts, lambda _x: c0, floor)
    if len(xs) < 3:
        return out
    can_cv = len(pts) >= 4
    if can_cv:
        const_score = cv_rmse(
            pts,
            lambda rest: (lambda _x, c=weighted_mean(rest, floor): c),
            floor)
    else:
        const_score = const_rmse
    if const_score < 1e-12:
        return out

    best = None
    for exp in EXPONENTS:
        for log_pow in LOG_POWERS:
            sol = solve_term(pts, exp, log_pow, floor)
            if sol is None:
                continue
            c, a = sol

            def predictor(rest, e=exp, l=log_pow):
                s = solve_term(rest, e, l, floor)
                if s is None:
                    return None
                return lambda x: s[0] + s[1] * term_eval(x, e, l)

            if can_cv:
                score = cv_rmse(pts, predictor, floor)
            else:
                score = rel_rmse(
                    pts,
                    lambda x, c=c, a=a, e=exp, l=log_pow:
                        c + a * term_eval(x, e, l),
                    floor)
            if not math.isfinite(score):
                continue
            if best is None or score < best[0] * (1.0 - 1e-9):
                best = (score, c, a, exp, log_pow)

    if best is None or const_score <= best[0] * TERM_ADVANTAGE:
        return out
    _, c, a, exp, log_pow = best
    return {"constant": False, "c": c, "a": a, "exp": exp,
            "log": log_pow}


def model_eval(m, x):
    if m["constant"]:
        return m["c"]
    return m["c"] + m["a"] * term_eval(x, m["exp"], m["log"])


def term_text(m):
    if m["constant"]:
        return "const"
    s = f"n^{m['exp']:.2f}"
    if m["log"]:
        s += f"*log2(n)^{m['log']}"
    return s


# ----------------------------------------------------------------
# the gate
# ----------------------------------------------------------------

def check_metric(sweep_name, mm, pts, class_tol):
    """One metric of one sweep; returns (rc, summary line)."""
    name = f"{sweep_name}/{mm['metric']}"
    cls = mm["class"]
    in_domain = [(x, y) for x, y in pts
                 if mm["xmin"] * (1 - 1e-9) <= x
                 <= mm["xmax"] * (1 + 1e-9)]
    if not in_domain:
        return fail(f"{name}: no fresh points inside the model "
                    f"domain [{mm['xmin']:g}, {mm['xmax']:g}]"), ""
    rc = 0

    # Envelope. Host metrics compare shape only: both sides get
    # normalized by their value at the smallest fresh x.
    preds = [(x, model_eval(mm, x)) for x, _y in in_domain]
    scale = max(max(abs(y) for _x, y in in_domain),
                max(abs(p) for _x, p in preds))
    floor = max(1e-12, 1e-3 * scale)
    if cls == "host":
        y0 = in_domain[0][1]
        p0 = preds[0][1]
        if abs(y0) < floor or abs(p0) < floor:
            return fail(f"{name}: host normalization point is "
                        f"zero"), ""
        rows = [(x, y / y0, p / p0)
                for (x, y), (_x, p) in zip(in_domain, preds)]
    else:
        rows = [(x, y, p)
                for (x, y), (_x, p) in zip(in_domain, preds)]
    worst = 0.0
    for x, y, p in rows:
        err = abs(y - p) / max(abs(p), floor if cls != "host"
                               else 1e-9)
        worst = max(worst, err)
        if err > mm["envelope"]:
            rc |= fail(
                f"{name}: at {mm.get('param', 'x')}={x:g} measured "
                f"{y:.6g} vs predicted {p:.6g} "
                f"({err * 100:.1f}% > envelope "
                f"{mm['envelope'] * 100:.0f}%)"
                + (" [shape-normalized]" if cls == "host" else ""))

    # Scaling class: refit and compare total growth over the domain.
    # Host rates wobble point-to-point on a busy runner, and a
    # 3-point refit happily turns that wobble into a small exponent,
    # so they get double headroom before "the class changed".
    eff_tol = class_tol * 2 if cls == "host" else class_tol
    class_note = "class n/a"
    if len({x for x, _ in in_domain}) >= 3:
        fresh = refit(in_domain)
        lo = model_eval(mm, mm["xmin"])
        hi = model_eval(mm, mm["xmax"])
        flo = model_eval(fresh, mm["xmin"])
        fhi = model_eval(fresh, mm["xmax"])
        eps = floor
        if min(abs(lo), abs(flo)) > eps:
            g_model = abs(hi) / abs(lo)
            g_fresh = abs(fhi) / abs(flo)
            ratio = (max(g_model, g_fresh) /
                     max(min(g_model, g_fresh), 1e-12))
            class_note = (f"class {term_text(fresh)} vs committed "
                          f"{term_text(mm)} (growth x{g_fresh:.2f} "
                          f"vs x{g_model:.2f})")
            if ratio > eff_tol:
                rc |= fail(
                    f"{name}: scaling class diverged — fresh fit "
                    f"{term_text(fresh)} grows x{g_fresh:.2f} over "
                    f"[{mm['xmin']:g}, {mm['xmax']:g}] vs the "
                    f"committed {term_text(mm)} x{g_model:.2f} "
                    f"(ratio {ratio:.2f} > {eff_tol:g})")
    line = (f"  {name}: {'FAIL' if rc else 'ok'} "
            f"(worst {worst * 100:.1f}% of "
            f"{mm['envelope'] * 100:.0f}% envelope [{cls}], "
            f"{class_note})")
    return rc, line


def check_sweep_file(path, models_dir, class_tol):
    try:
        with open(path, encoding="utf-8") as f:
            sweep = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"{path}: unreadable: {e}")
    if sweep.get("kind") != "sweep":
        return fail(f"{path}: not a sweep document")
    name = sweep.get("sweep", "?")
    model_path = os.path.join(models_dir, f"MODEL_{name}.json")
    try:
        with open(model_path, encoding="utf-8") as f:
            model = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"{path}: committed model {model_path} "
                    f"unreadable: {e}")
    if model.get("kind") != "model":
        return fail(f"{model_path}: not a model document")

    series = {}
    for p in sweep.get("points", []):
        for k, v in p.get("metrics", {}).items():
            series.setdefault(k, []).append((p["x"], v))
    for pts in series.values():
        pts.sort()

    rc = 0
    lines = []
    checked = 0
    for mm in model.get("metrics", []):
        pts = series.get(mm["metric"])
        if pts is None:
            rc |= fail(f"{name}/{mm['metric']}: committed model has "
                       f"no fresh measurement in {path}")
            continue
        mm = dict(mm, param=sweep.get("param", "x"))
        mrc, line = check_metric(name, mm, pts, class_tol)
        rc |= mrc
        if line:
            lines.append(line)
        checked += 1
    print(f"{path}: {checked} metrics vs {model_path}")
    for line in lines:
        print(line)
    if checked == 0:
        rc |= fail(f"{path}: no metrics checked")
    return rc


# ----------------------------------------------------------------
# --self-test: the gate must accept good data and reject divergence
# ----------------------------------------------------------------

def _write(tmp, fname, doc):
    path = os.path.join(tmp, fname)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f)
    return path


def _model_doc(sweep, metrics):
    return {"kind": "model", "sweep": sweep, "bench": "selftest",
            "param": "n", "unit": "n", "metrics": metrics}


def _sweep_doc(sweep, rows):
    return {"kind": "sweep", "sweep": sweep, "bench": "selftest",
            "param": "n", "unit": "n",
            "points": [{"x": x, "metrics": m} for x, m in rows]}


def _metric(name, cls, c, a, exp, log, envelope, xmin, xmax):
    return {"metric": name, "class": cls, "c": c, "a": a,
            "exp": exp, "log": log, "constant": a == 0.0,
            "r2": 1.0, "adj_r2": 1.0, "rmse_rel": 0.0,
            "cv_rmse_rel": 0.0, "points": 5, "xmin": xmin,
            "xmax": xmax, "envelope": envelope, "formula": "synth"}


def self_test():
    xs = [4.0, 8.0, 16.0, 32.0, 64.0]
    rc = 0
    with tempfile.TemporaryDirectory() as tmp:
        # Committed: lat_us = 5 + 2n (sim, 10%), rate = const 100
        # with a deliberately loose 500% envelope (host).
        _write(tmp, "MODEL_good.json", _model_doc("good", [
            _metric("lat_us", "sim", 5.0, 2.0, 1.0, 0, 0.10, 4, 64),
            _metric("rate_per_sec", "host", 100.0, 0.0, 0.0, 0,
                    10.0, 4, 64),
        ]))

        # 1. Fresh data on the law (2% wiggle; host scaled 3x to
        #    prove shape normalization absorbs machine speed).
        good = _sweep_doc("good", [
            (x, {"lat_us": (5 + 2 * x) * (1.02 if i % 2 else 0.98),
                 "rate_per_sec": 300.0})
            for i, x in enumerate(xs)])
        path = _write(tmp, "SWEEP_good.json", good)
        if check_sweep_file(path, tmp, 2.0) != 0:
            rc |= fail("self-test: conforming sweep was rejected")
        else:
            print("self-test: conforming sweep accepted")

        # 2. Envelope violation: latency 60% high.
        bad_env = _sweep_doc("good", [
            (x, {"lat_us": (5 + 2 * x) * 1.6,
                 "rate_per_sec": 100.0}) for x in xs])
        path = _write(tmp, "SWEEP_good.json", bad_env)
        if check_sweep_file(path, tmp, 2.0) == 0:
            rc |= fail("self-test: envelope violation was accepted")
        else:
            print("self-test: envelope violation rejected (good)")

        # 3. Scaling-class regression hiding inside the loose host
        #    envelope: the flat rate turned into x^0.75 growth (x8
        #    over the domain). Every normalized point stays within
        #    1000%, so only the class check can catch it — and it
        #    must clear the doubled host tolerance.
        bad_class = _sweep_doc("good", [
            (x, {"lat_us": 5 + 2 * x,
                 "rate_per_sec": 100.0 * (x / 4.0) ** 0.75})
            for x in xs])
        path = _write(tmp, "SWEEP_good.json", bad_class)
        if check_sweep_file(path, tmp, 2.0) == 0:
            rc |= fail(
                "self-test: scaling-class regression was accepted")
        else:
            print("self-test: scaling-class regression rejected "
                  "(good)")

        # 4. The refit mirror recovers a known law.
        m = refit([(x, 3.0 + 0.5 * x * math.log2(x)) for x in xs])
        if m["constant"] or m["exp"] != 1.0 or m["log"] != 1:
            rc |= fail(f"self-test: refit picked {term_text(m)} "
                       f"for n*log2(n) data")
        else:
            print("self-test: refit recovers n*log2(n) (good)")
    print("self-test:", "FAIL" if rc else "all checks passed")
    return rc


def main(argv):
    models_dir = "bench/models"
    class_tol = 2.0
    files = []
    for arg in argv[1:]:
        if arg == "--self-test":
            return self_test()
        if arg.startswith("--models-dir="):
            models_dir = arg.split("=", 1)[1]
        elif arg.startswith("--class-tol="):
            class_tol = float(arg.split("=", 1)[1])
        else:
            files.append(arg)
    if not files:
        print(__doc__, file=sys.stderr)
        return 2
    rc = 0
    for path in files:
        rc |= check_sweep_file(path, models_dir, class_tol)
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
