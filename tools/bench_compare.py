#!/usr/bin/env python3
"""Diff bench JSON reports against committed baselines (CI perf gate).

Compares every numeric metric of one or more `BENCH_<name>.json`
candidate files (written by the benches' `--json-out=`) against the
baseline of the same basename under `bench/baselines/`. Metrics are
matched by flattened dotted path. Only paths present in BOTH documents
are compared, so adding a metric to a bench never breaks the gate —
but one-sided paths are never silently dropped either: baseline-only
(dropped) and candidate-only (added) metrics each get a WARN line and
both counts appear in the per-file summary.

Tolerance classes (per-metric relative change, worse direction only):

  sim    model-time-derived metrics (put_us, stream_mb_s, sim events,
         coverage): deterministic given the seed, so tight —
         fail beyond --fail-pct (default 15), warn beyond --warn-pct
         (default 5).
  host   host wall-clock metrics (wall_s, wall_ms, ratio,
         events_per_sec, speedup): noisy across CI machines — fail
         only beyond --host-fail-pct (default 50), never warn.
  count  integer event counts (events, traces, retransmits, puts,
         bytes): differences mean the workload changed, not a perf
         regression — report as info, never fail.

Direction matters: higher-is-better metrics (*_per_sec, *_mb_s,
coverage, speedup*) only regress when they drop; lower-is-better
metrics (*_us, *_ms, wall_s, ratio) when they rise. Improvements are
reported but never gate.

Usage:
  bench_compare.py [--baseline-dir=DIR] [--fail-pct=P] [--warn-pct=P]
                   [--host-fail-pct=P] [--tol=REGEX:PCT ...] FILE...

`--tol=REGEX:PCT` overrides the fail threshold for metrics whose
`<file-stem>.<dotted.path>` matches REGEX (first match wins).

Exit status: 1 when any metric fails, when a baseline is missing, or
when either file is unreadable or not valid JSON (a renamed bench or
a corrupted baseline must fail the gate loudly, never skip it);
0 otherwise (warnings do not fail). Standard library only.
"""

import json
import os
import re
import sys

HOST_PAT = re.compile(
    r"(^|\.)(wall_s|wall_ms|events_per_sec|ratio|speedup[^.]*)$")
HIGHER_BETTER_PAT = re.compile(
    r"(^|\.)([^.]*(per_sec|mb_s)|coverage[^.]*|speedup[^.]*)$")
LOWER_BETTER_PAT = re.compile(
    r"(^|\.)([^.]*(_us|_ms)|wall_s|ratio)$")


def flatten(doc, prefix=""):
    """Numeric leaves of a nested JSON object as {dotted.path: value}."""
    out = {}
    if isinstance(doc, dict):
        for k, v in doc.items():
            p = f"{prefix}.{k}" if prefix else k
            out.update(flatten(v, p))
    elif isinstance(doc, (int, float)) and not isinstance(doc, bool):
        out[prefix] = float(doc)
    return out


def classify(path):
    if HOST_PAT.search(path):
        return "host"
    if HIGHER_BETTER_PAT.search(path) or LOWER_BETTER_PAT.search(path):
        return "sim"
    return "count"


def regression_pct(path, base, cand):
    """Relative change in the *worse* direction, as a percentage.

    Positive = regressed, negative = improved, None = not a rate or
    latency metric (counts have no worse direction).
    """
    if base == 0:
        return None
    change = (cand - base) / abs(base) * 100.0
    if HIGHER_BETTER_PAT.search(path):
        return -change
    if LOWER_BETTER_PAT.search(path):
        return change
    return None


def load_metrics(path, role):
    """Flattened metrics of one JSON file, or None with a FAIL line.

    Never raises for a bad file: a missing, unreadable or unparsable
    document prints a one-line diagnosis naming the file and its role
    (candidate/baseline) so the gate fails with a clear reason rather
    than a traceback or a silent skip.
    """
    try:
        with open(path, encoding="utf-8") as f:
            return flatten(json.load(f))
    except FileNotFoundError:
        print(f"FAIL  {role} {path}: file not found"
              + (" — regenerate it with the bench's --json-out= and "
                 "commit it" if role == "baseline" else ""))
    except OSError as e:
        print(f"FAIL  {role} {path}: unreadable: {e}")
    except json.JSONDecodeError as e:
        print(f"FAIL  {role} {path}: invalid JSON: {e}")
    return None


def compare_file(path, baseline_dir, opts):
    name = os.path.basename(path)
    base_path = os.path.join(baseline_dir, name)
    cand = load_metrics(path, "candidate")
    base = load_metrics(base_path, "baseline")
    if cand is None or base is None:
        return 1

    stem = re.sub(r"^BENCH_|\.json$", "", name)
    shared = sorted(set(cand) & set(base))
    # Paths on one side only are never silently intersected away: a
    # dropped metric is how a renamed key or a lost measurement pass
    # hides from the gate, an added one is a baseline waiting to be
    # regenerated. Both get loud WARN lines and show up in the
    # summary count.
    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))
    if only_base:
        print(f"WARN  {name}: {len(only_base)} baseline metrics "
              f"dropped from candidate (not compared): "
              f"{', '.join(only_base[:5])}"
              f"{' ...' if len(only_base) > 5 else ''}")
    if only_cand:
        print(f"WARN  {name}: {len(only_cand)} candidate metrics "
              f"missing from baseline (not gated): "
              f"{', '.join(only_cand[:5])}"
              f"{' ...' if len(only_cand) > 5 else ''}")
    rc = 0
    for p in shared:
        b, c = base[p], cand[p]
        cls = classify(p)
        reg = regression_pct(p, b, c)
        fail_pct = opts["host_fail"] if cls == "host" \
            else opts["fail"]
        for pat, pct in opts["overrides"]:
            if pat.search(f"{stem}.{p}"):
                fail_pct = pct
                break
        label = f"{name}:{p}"
        if reg is None or cls == "count":
            if b != c:
                print(f"INFO  {label}: {b:g} -> {c:g} ({cls})")
            continue
        if reg > fail_pct:
            print(f"FAIL  {label}: {b:g} -> {c:g} "
                  f"(regressed {reg:.1f}% > {fail_pct:g}% allowed, "
                  f"class {cls})")
            rc = 1
        elif cls == "sim" and reg > opts["warn"]:
            print(f"WARN  {label}: {b:g} -> {c:g} "
                  f"(regressed {reg:.1f}%)")
        elif reg < -opts["warn"]:
            print(f"GOOD  {label}: {b:g} -> {c:g} "
                  f"(improved {-reg:.1f}%)")
    if rc == 0:
        print(f"OK    {name}: {len(shared)} metrics within "
              f"tolerance ({len(only_base)} dropped, "
              f"{len(only_cand)} added)")
    return rc


def main(argv):
    baseline_dir = "bench/baselines"
    opts = {"fail": 15.0, "warn": 5.0, "host_fail": 50.0,
            "overrides": []}
    files = []
    for arg in argv[1:]:
        if arg.startswith("--baseline-dir="):
            baseline_dir = arg.split("=", 1)[1]
        elif arg.startswith("--fail-pct="):
            opts["fail"] = float(arg.split("=", 1)[1])
        elif arg.startswith("--warn-pct="):
            opts["warn"] = float(arg.split("=", 1)[1])
        elif arg.startswith("--host-fail-pct="):
            opts["host_fail"] = float(arg.split("=", 1)[1])
        elif arg.startswith("--tol="):
            spec = arg.split("=", 1)[1]
            pat, _, pct = spec.rpartition(":")
            if not pat:
                print(f"--tol wants REGEX:PCT, got '{spec}'",
                      file=sys.stderr)
                return 2
            opts["overrides"].append((re.compile(pat), float(pct)))
        elif arg in ("-h", "--help"):
            print(__doc__)
            return 0
        else:
            files.append(arg)
    if not files:
        print(__doc__, file=sys.stderr)
        return 2

    rc = 0
    for path in files:
        rc |= compare_file(path, baseline_dir, opts)
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
