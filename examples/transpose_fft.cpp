/**
 * @file
 * Distributed matrix transpose — the FT redistribution motif.
 *
 * FT's 3-D FFT changes pencil orientation between phases, which on a
 * distributed machine is a transpose: every cell sends a tile to
 * every other cell. With direct remote data access the tiles move as
 * stride PUTs with no SEND/RECEIVE pairing, and completion uses the
 * Ack & Barrier model. The example transposes a matrix twice and
 * checks the round trip is the identity, then reports how the
 * traffic was carried.
 *
 * Run: ./build/examples/transpose_fft
 */

#include <cstdio>

#include "core/ap1000p.hh"
#include "runtime/rts.hh"

using namespace ap;
using namespace ap::core;
using namespace ap::rt;

int
main()
{
    constexpr int n = 64;
    constexpr int cells = 8;

    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(cells);
    cfg.memBytesPerCell = 2 << 20;
    hw::Machine machine(cfg);

    int mismatches = 0;
    Tick first_transpose = 0;

    SpmdResult res = run_spmd(machine, [&](Context &ctx) {
        GArray2D a(ctx, n, n, SplitDim::rows);
        GArray2D b(ctx, n, n, SplitDim::rows);
        GArray2D c(ctx, n, n, SplitDim::rows);
        Runtime rts(ctx);

        int lo = a.lo(ctx.id());
        int cnt = a.count(ctx.id());
        for (int r = lo; r < lo + cnt; ++r)
            for (int j = 0; j < n; ++j)
                a.set_local(r, j, r * 1000.0 + j);
        ctx.barrier();

        Tick t0 = ctx.now();
        rts.transpose(b, a); // b = a^T
        if (ctx.id() == 0)
            first_transpose = ctx.now() - t0;
        rts.transpose(c, b); // c = a again

        for (int r = lo; r < lo + cnt; ++r)
            for (int j = 0; j < n; ++j)
                if (c.get_local(r, j) != r * 1000.0 + j)
                    ++mismatches;

        // Spot-check the single transpose too: b(i, j) == a(j, i).
        int blo = b.lo(ctx.id());
        for (int i = blo; i < blo + b.count(ctx.id()); ++i)
            for (int j = 0; j < n; ++j)
                if (b.get_local(i, j) != j * 1000.0 + i)
                    ++mismatches;
    });

    if (res.deadlock)
        return 1;

    const auto &net = machine.tnet().stats();
    std::printf("double transpose of %dx%d over %d cells: %s\n", n, n,
                cells, mismatches == 0 ? "exact" : "MISMATCH");
    std::printf("one transpose: %.1f simulated us\n",
                ticks_to_us(first_transpose));
    std::printf("traffic: %llu messages, %llu payload bytes, mean "
                "hop distance %.2f\n",
                static_cast<unsigned long long>(net.messages),
                static_cast<unsigned long long>(net.payloadBytes),
                net.distance.scalar().mean());
    return mismatches == 0 ? 0 : 1;
}
