/**
 * @file
 * A real conjugate-gradient solve on the functional machine — the
 * CG benchmark in miniature, numerics included.
 *
 * Solves A x = b for a 1-D Laplacian (tridiagonal [-1, 2, -1]) of
 * order n, block-distributed over the cells. Each iteration uses
 * the paper's machinery end to end:
 *
 *  - halo exchange of the search vector by one-sided PUT with recv
 *    flags (direct remote data access — no SEND/RECEIVE pairing);
 *  - dot products by communication-register reductions;
 *  - the residual check by a scalar reduction;
 *
 * and verifies the solution against a serial solve on the host.
 *
 * Run: ./build/examples/cg_mini
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/ap1000p.hh"
#include "runtime/decomp.hh"

using namespace ap;
using namespace ap::core;

namespace
{

constexpr int n = 256;
constexpr int cells = 8;
constexpr int max_iters = 2 * n;
constexpr double tol = 1e-10;

/** Serial CG for verification. */
std::vector<double>
serial_cg(const std::vector<double> &b)
{
    auto apply = [&](const std::vector<double> &v) {
        std::vector<double> out(n);
        for (int i = 0; i < n; ++i) {
            double s = 2.0 * v[static_cast<std::size_t>(i)];
            if (i > 0)
                s -= v[static_cast<std::size_t>(i - 1)];
            if (i < n - 1)
                s -= v[static_cast<std::size_t>(i + 1)];
            out[static_cast<std::size_t>(i)] = s;
        }
        return out;
    };
    std::vector<double> x(n, 0.0), r = b, p = b;
    double rho = 0;
    for (double v : r)
        rho += v * v;
    for (int it = 0; it < max_iters && rho > tol * tol; ++it) {
        auto q = apply(p);
        double pq = 0;
        for (int i = 0; i < n; ++i)
            pq += p[static_cast<std::size_t>(i)] *
                  q[static_cast<std::size_t>(i)];
        double alpha = rho / pq;
        double rho2 = 0;
        for (int i = 0; i < n; ++i) {
            x[static_cast<std::size_t>(i)] +=
                alpha * p[static_cast<std::size_t>(i)];
            r[static_cast<std::size_t>(i)] -=
                alpha * q[static_cast<std::size_t>(i)];
            rho2 += r[static_cast<std::size_t>(i)] *
                    r[static_cast<std::size_t>(i)];
        }
        double beta = rho2 / rho;
        rho = rho2;
        for (int i = 0; i < n; ++i)
            p[static_cast<std::size_t>(i)] =
                r[static_cast<std::size_t>(i)] +
                beta * p[static_cast<std::size_t>(i)];
    }
    return x;
}

} // namespace

int
main()
{
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(cells);
    cfg.memBytesPerCell = 2 << 20;
    hw::Machine machine(cfg);

    // Right-hand side: a bump.
    std::vector<double> b(n);
    for (int i = 0; i < n; ++i)
        b[static_cast<std::size_t>(i)] =
            std::sin(3.14159265 * (i + 1) / (n + 1));

    std::vector<double> x_par(n, 0.0);
    int iters_used = 0;

    SpmdResult res = run_spmd(machine, [&](Context &ctx) {
        rt::Decomp1D dec = rt::Decomp1D::block(n, ctx.nprocs());
        int lo = dec.block_lo(ctx.id());
        int cnt = dec.local_count(ctx.id());

        // Local slabs with one halo element each side; symmetric
        // addresses so neighbours can PUT into our halo directly.
        int slab = dec.block_size() + 2;
        Addr pbuf = ctx.alloc(static_cast<std::size_t>(slab) * 8);
        Addr halo_flag = ctx.alloc_flag();
        auto P = [&](int li) { // local index -1..cnt
            return pbuf + static_cast<Addr>(li + 1) * 8;
        };

        std::vector<double> x(static_cast<std::size_t>(cnt), 0.0);
        std::vector<double> r(static_cast<std::size_t>(cnt));
        std::vector<double> p(static_cast<std::size_t>(cnt));
        for (int i = 0; i < cnt; ++i) {
            r[static_cast<std::size_t>(i)] =
                b[static_cast<std::size_t>(lo + i)];
            p[static_cast<std::size_t>(i)] =
                r[static_cast<std::size_t>(i)];
        }

        double rho = 0;
        for (double v : r)
            rho += v * v;
        rho = ctx.allreduce(rho, ReduceOp::sum);

        std::uint32_t halo_round = 0;
        int it = 0;
        for (; it < max_iters && rho > tol * tol; ++it) {
            // Publish p into the slab and exchange halos by PUT.
            for (int i = 0; i < cnt; ++i)
                ctx.poke_f64(P(i), p[static_cast<std::size_t>(i)]);
            int expected = (ctx.id() > 0 ? 1 : 0) +
                           (ctx.id() < ctx.nprocs() - 1 ? 1 : 0);
            if (ctx.id() > 0) // my first element -> left halo
                ctx.put(ctx.id() - 1, P(dec.local_count(ctx.id() - 1)),
                        P(0), 8, no_flag, halo_flag);
            if (ctx.id() < ctx.nprocs() - 1) // last -> right halo
                ctx.put(ctx.id() + 1, P(-1), P(cnt - 1), 8, no_flag,
                        halo_flag);
            halo_round += static_cast<std::uint32_t>(expected);
            ctx.wait_flag(halo_flag, halo_round);

            // q = A p using the halo; boundary rows clamp to zero.
            double pq = 0;
            std::vector<double> q(static_cast<std::size_t>(cnt));
            for (int i = 0; i < cnt; ++i) {
                double left = (lo + i == 0) ? 0.0
                                            : ctx.peek_f64(P(i - 1));
                double right = (lo + i == n - 1)
                                   ? 0.0
                                   : ctx.peek_f64(P(i + 1));
                double qi = 2.0 * p[static_cast<std::size_t>(i)] -
                            left - right;
                q[static_cast<std::size_t>(i)] = qi;
                pq += p[static_cast<std::size_t>(i)] * qi;
            }
            ctx.compute_flops(6.0 * cnt);
            pq = ctx.allreduce(pq, ReduceOp::sum);

            double alpha = rho / pq;
            double rho2 = 0;
            for (int i = 0; i < cnt; ++i) {
                x[static_cast<std::size_t>(i)] +=
                    alpha * p[static_cast<std::size_t>(i)];
                r[static_cast<std::size_t>(i)] -=
                    alpha * q[static_cast<std::size_t>(i)];
                rho2 += r[static_cast<std::size_t>(i)] *
                        r[static_cast<std::size_t>(i)];
            }
            ctx.compute_flops(5.0 * cnt);
            rho2 = ctx.allreduce(rho2, ReduceOp::sum);

            double beta = rho2 / rho;
            rho = rho2;
            for (int i = 0; i < cnt; ++i)
                p[static_cast<std::size_t>(i)] =
                    r[static_cast<std::size_t>(i)] +
                    beta * p[static_cast<std::size_t>(i)];
            ctx.compute_flops(2.0 * cnt);
            ctx.barrier();
        }

        if (ctx.id() == 0)
            iters_used = it;
        for (int i = 0; i < cnt; ++i)
            x_par[static_cast<std::size_t>(lo + i)] =
                x[static_cast<std::size_t>(i)];
    });

    if (res.deadlock)
        return 1;

    std::vector<double> x_ser = serial_cg(b);
    double max_err = 0;
    for (int i = 0; i < n; ++i)
        max_err = std::max(max_err,
                           std::fabs(x_par[static_cast<std::size_t>(i)] -
                                     x_ser[static_cast<std::size_t>(i)]));

    std::printf("CG on %d cells, n=%d: converged in %d iterations\n",
                cells, n, iters_used);
    std::printf("max |parallel - serial| = %.3e %s\n", max_err,
                max_err < 1e-8 ? "(match)" : "(MISMATCH!)");
    std::printf("simulated time %.1f us; %llu one-sided messages; "
                "%llu flag increments on cell 0\n",
                res.finish_us(),
                static_cast<unsigned long long>(
                    machine.tnet().stats().messages),
                static_cast<unsigned long long>(
                    machine.cell(0).mc().stats().flagIncrements));
    return max_err < 1e-8 ? 0 : 1;
}
