/**
 * @file
 * Jacobi heat diffusion with OVERLAP FIX — the Figure 2 pattern.
 *
 * A 64x64 grid is block-decomposed along its second dimension
 * (columns), exactly the case where each boundary refresh is a
 * strided transfer of a column (Sections 2.2, 3.1). Each iteration:
 *
 *   1. rts.overlap_fix() refreshes the replicated boundary columns
 *      from the neighbours (stride PUTs + Ack & Barrier);
 *   2. each cell relaxes its own columns using the halo;
 *   3. a communication-register reduction computes the residual.
 *
 * The result is verified against a serial reference computed on the
 * host, and the per-iteration simulated cost is reported.
 *
 * Run: ./build/examples/stencil_overlap
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/ap1000p.hh"
#include "runtime/rts.hh"

using namespace ap;
using namespace ap::core;
using namespace ap::rt;

namespace
{

constexpr int n = 64;
constexpr int iterations = 30;
constexpr int cells = 8;

double
boundary(int r, int c)
{
    // Fixed hot edge on the left, cold elsewhere.
    return c == 0 ? 100.0 : (r == 0 || r == n - 1 || c == n - 1)
                                ? 0.0
                                : 25.0;
}

/** Serial reference for verification. */
std::vector<double>
serial()
{
    std::vector<double> cur(n * n), nxt(n * n);
    for (int r = 0; r < n; ++r)
        for (int c = 0; c < n; ++c)
            cur[static_cast<std::size_t>(r * n + c)] = boundary(r, c);
    for (int it = 0; it < iterations; ++it) {
        nxt = cur;
        for (int r = 1; r < n - 1; ++r)
            for (int c = 1; c < n - 1; ++c)
                nxt[static_cast<std::size_t>(r * n + c)] =
                    0.25 *
                    (cur[static_cast<std::size_t>((r - 1) * n + c)] +
                     cur[static_cast<std::size_t>((r + 1) * n + c)] +
                     cur[static_cast<std::size_t>(r * n + c - 1)] +
                     cur[static_cast<std::size_t>(r * n + c + 1)]);
        cur.swap(nxt);
    }
    return cur;
}

} // namespace

int
main()
{
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(cells);
    cfg.memBytesPerCell = 2 << 20;
    hw::Machine machine(cfg);

    std::vector<double> parallel(n * n, 0.0);
    Tick comm_start = 0, total = 0;

    SpmdResult res = run_spmd(machine, [&](Context &ctx) {
        // Two column-split arrays with a one-column overlap area.
        GArray2D cur(ctx, n, n, SplitDim::cols, 1);
        GArray2D nxt(ctx, n, n, SplitDim::cols, 1);
        Runtime rts(ctx);

        int lo = cur.lo(ctx.id());
        int cnt = cur.count(ctx.id());

        for (int r = 0; r < n; ++r)
            for (int c = lo; c < lo + cnt; ++c)
                cur.set_local(r, c, boundary(r, c));
        ctx.barrier();
        comm_start = ctx.now();

        for (int it = 0; it < iterations; ++it) {
            rts.overlap_fix(cur);

            for (int r = 0; r < n; ++r)
                for (int c = lo; c < lo + cnt; ++c) {
                    if (r == 0 || r == n - 1 || c == 0 || c == n - 1) {
                        nxt.set_local(r, c, cur.get_local(r, c));
                        continue;
                    }
                    nxt.set_local(
                        r, c,
                        0.25 * (cur.get_local(r - 1, c) +
                                cur.get_local(r + 1, c) +
                                cur.get_local(r, c - 1) +
                                cur.get_local(r, c + 1)));
                }
            // Model the relaxation cost: ~4 flops per point.
            ctx.compute_flops(4.0 * n * cnt);

            // swap: copy next into cur (local work).
            for (int r = 0; r < n; ++r)
                for (int c = lo; c < lo + cnt; ++c)
                    cur.set_local(r, c, nxt.get_local(r, c));
        }

        // Residual check via the communication registers.
        double local_sum = 0;
        for (int r = 0; r < n; ++r)
            for (int c = lo; c < lo + cnt; ++c)
                local_sum += cur.get_local(r, c);
        double global_sum = ctx.allreduce(local_sum, ReduceOp::sum);
        if (ctx.id() == 0)
            std::printf("global heat sum: %.3f\n", global_sum);
        total = ctx.now();

        // Collect the distributed grid on the host for verification.
        for (int r = 0; r < n; ++r)
            for (int c = lo; c < lo + cnt; ++c)
                parallel[static_cast<std::size_t>(r * n + c)] =
                    cur.get_local(r, c);
    });

    if (res.deadlock)
        return 1;

    std::vector<double> ref = serial();
    double max_err = 0;
    for (std::size_t i = 0; i < ref.size(); ++i)
        max_err = std::max(max_err, std::fabs(ref[i] - parallel[i]));
    std::printf("max |parallel - serial| = %.3e %s\n", max_err,
                max_err < 1e-9 ? "(exact)" : "(MISMATCH!)");

    std::printf("%d iterations in %.1f simulated us (%.2f us/iter); "
                "%llu stride PUTs on the wire\n",
                iterations, ticks_to_us(total - comm_start),
                ticks_to_us(total - comm_start) / iterations,
                static_cast<unsigned long long>(
                    machine.tnet().stats().messages));
    return max_err < 1e-9 ? 0 : 1;
}
