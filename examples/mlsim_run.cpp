/**
 * @file
 * mlsim_run — the MLSim command-line front end.
 *
 * Replays an application trace under a machine parameter file, the
 * workflow of Section 5: trace + parameter file in, statistics out.
 *
 * Usage:
 *   mlsim_run --app <name> [--model <name>] [--params <file>]
 *             [--dump-trace <file>] [--dump-params <file>]
 *   mlsim_run --trace <file> [--model <name>] [--params <file>]
 *
 *   <name>:  EP | CG | FT | SP | "TC st" | "TC no st" | MatMul | SCG
 *   --model: ap1000 (default) | ap1000+ | ap1000*
 *   --params overrides --model with a Figure 6-format file.
 *
 * Examples:
 *   mlsim_run --app SCG --model ap1000+
 *   mlsim_run --app CG --dump-trace cg.trace
 *   mlsim_run --trace cg.trace --params my_machine.params
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "apps/app.hh"
#include "base/logging.hh"
#include "base/table.hh"
#include "mlsim/params.hh"
#include "mlsim/replay.hh"
#include "mlsim/trace_file.hh"

using namespace ap;
using namespace ap::mlsim;

namespace
{

void
usage()
{
    std::fprintf(stderr,
                 "usage: mlsim_run --app <name> | --trace <file>\n"
                 "       [--model ap1000|ap1000+|ap1000*]\n"
                 "       [--params <file>] [--dump-trace <file>]\n"
                 "       [--dump-params <file>]\n");
    std::exit(2);
}

Params
model_by_name(const std::string &name)
{
    if (name == "ap1000")
        return Params::ap1000();
    if (name == "ap1000+")
        return Params::ap1000_plus();
    if (name == "ap1000*")
        return Params::ap1000_fast();
    fatal("unknown model '%s' (ap1000, ap1000+, ap1000*)",
          name.c_str());
}

std::string
read_file(const std::string &path)
{
    std::ifstream f(path);
    if (!f)
        fatal("cannot open '%s'", path.c_str());
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string app_name, trace_path, model_name = "ap1000";
    std::string params_path, dump_trace, dump_params;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--app")
            app_name = next();
        else if (arg == "--trace")
            trace_path = next();
        else if (arg == "--model")
            model_name = next();
        else if (arg == "--params")
            params_path = next();
        else if (arg == "--dump-trace")
            dump_trace = next();
        else if (arg == "--dump-params")
            dump_params = next();
        else
            usage();
    }
    if (app_name.empty() == trace_path.empty())
        usage(); // exactly one source

    // Load the trace.
    core::Trace trace;
    if (!app_name.empty()) {
        auto app = apps::make_app(app_name);
        inform("generating %s trace (%d cells)...",
               app->info().name.c_str(), app->info().cells);
        trace = app->generate();
    } else {
        trace = load_trace(trace_path);
    }
    if (!dump_trace.empty()) {
        save_trace(trace, dump_trace);
        inform("wrote %s (%llu events)", dump_trace.c_str(),
               static_cast<unsigned long long>(trace.total_events()));
    }

    // Load the machine model.
    Params params = params_path.empty()
                        ? model_by_name(model_name)
                        : Params::from_file(read_file(params_path));
    if (!dump_params.empty()) {
        std::ofstream f(dump_params);
        f << params.to_file();
        inform("wrote %s", dump_params.c_str());
    }

    // Replay.
    ReplayReport r = Replay(trace, params).run();
    if (r.deadlock)
        fatal("replay deadlocked — trace is inconsistent");

    CellBreakdown m = r.mean();
    std::printf("\nmodel %s, %d cells, %llu trace events\n",
                params.name.c_str(), trace.cells(),
                static_cast<unsigned long long>(
                    trace.total_events()));
    std::printf("completion time: %.1f us (%.4f s)\n", r.totalUs,
                r.totalUs / 1e6);

    Table t({"Component", "mean us/cell", "% of mean total"});
    double mt = m.totalUs > 0 ? m.totalUs : 1;
    t.add_row({"Execution", Table::num(m.execUs, 1),
               Table::num(100 * m.execUs / mt, 1)});
    t.add_row({"Run-time system", Table::num(m.rtsUs, 1),
               Table::num(100 * m.rtsUs / mt, 1)});
    t.add_row({"Overhead", Table::num(m.overheadUs, 1),
               Table::num(100 * m.overheadUs / mt, 1)});
    t.add_row({"Idle", Table::num(m.idleUs, 1),
               Table::num(100 * m.idleUs / mt, 1)});
    t.print();

    std::printf("point-to-point: %llu messages, %llu bytes, mean "
                "message %.1f bytes, mean distance %.2f hops\n",
                static_cast<unsigned long long>(r.messages),
                static_cast<unsigned long long>(r.payloadBytes),
                r.messageSize.scalar().mean(),
                r.distance.scalar().mean());
    return 0;
}
