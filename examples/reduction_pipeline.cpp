/**
 * @file
 * Reductions three ways — the CG motif.
 *
 * A distributed dot product needs a scalar reduction every
 * iteration; CG additionally reduces whole vectors. This example
 * compares, at equal answers:
 *
 *   1. the hardware path: communication registers with present bits
 *      (fold + recursive doubling + unfold);
 *   2. the software path: SEND/RECEIVE group reduction (what group
 *      collectives use);
 *   3. the vector path: the ring-buffer pipeline with in-place
 *      operand consumption.
 *
 * Run: ./build/examples/reduction_pipeline
 */

#include <cstdio>

#include "core/ap1000p.hh"

using namespace ap;
using namespace ap::core;

int
main()
{
    constexpr int cells = 16;
    constexpr int vec_len = 1400; // CG's vector

    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(cells);
    cfg.memBytesPerCell = 2 << 20;
    hw::Machine machine(cfg);

    SpmdResult res = run_spmd(machine, [&](Context &ctx) {
        double mine = 1.0 + ctx.id();

        // 1. communication registers.
        Tick t0 = ctx.now();
        double s1 = ctx.allreduce(mine, ReduceOp::sum);
        Tick commreg_us = ctx.now() - t0;

        // 2. SEND/RECEIVE software tree.
        Group all = Group::all(ctx.nprocs());
        t0 = ctx.now();
        double s2 = ctx.allreduce_group(all, mine, ReduceOp::sum);
        Tick sendrecv_us = ctx.now() - t0;

        // 3. ring-buffer vector pipeline (per-element sums).
        Addr vec = ctx.alloc(vec_len * 8);
        for (int i = 0; i < vec_len; ++i)
            ctx.poke_f64(vec + static_cast<Addr>(i) * 8, mine);
        ctx.barrier();
        t0 = ctx.now();
        ctx.allreduce_vector(vec, vec_len, ReduceOp::sum);
        Tick ring_us = ctx.now() - t0;

        if (ctx.id() == 0) {
            double expect = cells * (cells + 1) / 2.0;
            std::printf("scalar sum:   commreg=%.0f  sendrecv=%.0f  "
                        "(expect %.0f)\n",
                        s1, s2, expect);
            std::printf("vector sum[0..2]: %.0f %.0f %.0f "
                        "(expect %.0f each)\n",
                        ctx.peek_f64(vec), ctx.peek_f64(vec + 8),
                        ctx.peek_f64(vec + 16), expect);
            std::printf("\nsimulated cost on %d cells:\n", cells);
            std::printf("  commreg scalar reduce   %8.2f us\n",
                        ticks_to_us(commreg_us));
            std::printf("  send/recv scalar reduce %8.2f us\n",
                        ticks_to_us(sendrecv_us));
            std::printf("  ring vector reduce      %8.2f us "
                        "(%d doubles, %.1f ns/elem)\n",
                        ticks_to_us(ring_us), vec_len,
                        1000.0 * ticks_to_us(ring_us) / vec_len);
        }
        ctx.barrier();
    });

    if (!res.deadlock) {
        // Every ring step was consumed in place — no receive copies.
        std::uint64_t copies = 0, inplace = 0;
        for (int c = 0; c < cells; ++c) {
            copies += machine.cell(c).ring().stats().copies;
            inplace += machine.cell(c).ring().stats().inPlaceReads;
        }
        std::printf("\nring-buffer reads: %llu in place",
                    static_cast<unsigned long long>(inplace));
        std::printf(" (vector path), %llu copied (send/recv path)\n",
                    static_cast<unsigned long long>(copies));
    }
    return res.deadlock ? 1 : 0;
}
