/**
 * @file
 * Quickstart: the AP1000+ PUT/GET interface in five minutes.
 *
 * Builds a 16-cell machine and walks through the paper's primitives:
 * one-sided PUT with flag synchronization, GET, an acknowledged PUT
 * (the Ack & Barrier completion model), an S-net barrier, and a
 * scalar reduction over the communication registers.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/ap1000p.hh"

using namespace ap;
using namespace ap::core;

int
main()
{
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(16);
    cfg.memBytesPerCell = 1 << 20; // 1 MB per cell is plenty here
    hw::Machine machine(cfg);

    SpmdResult result = run_spmd(machine, [](Context &ctx) {
        // Symmetric allocation: every cell gets the same addresses.
        Addr buf = ctx.alloc(64);
        Addr flag = ctx.alloc_flag();

        // --- 1. one-sided PUT with a receive flag ------------------
        // Cell 0 writes directly into cell 1's memory; the MSC+
        // increments `flag` on cell 1 when the receive DMA finishes.
        if (ctx.id() == 0) {
            ctx.poke_f64(buf, 3.14159);
            ctx.put(1, buf, buf, 8, no_flag, flag);
        }
        if (ctx.id() == 1) {
            ctx.wait_flag(flag, 1);
            std::printf("[cell 1] PUT landed: %.5f (t = %.2f us)\n",
                        ctx.peek_f64(buf), ticks_to_us(ctx.now()));
        }
        ctx.barrier();

        // --- 2. one-sided GET --------------------------------------
        // Cell 5 pulls the value straight out of cell 1's memory.
        if (ctx.id() == 5) {
            Addr dst = ctx.alloc(8);
            Addr done = ctx.alloc_flag();
            ctx.get(1, buf, dst, 8, no_flag, done);
            ctx.wait_flag(done, 1);
            std::printf("[cell 5] GET fetched: %.5f\n",
                        ctx.peek_f64(dst));
        }
        ctx.barrier();

        // --- 3. acknowledged PUT (Ack & Barrier) --------------------
        // ack=true appends a GET probe to address 0; the in-order
        // T-net makes its reply prove the PUT completed remotely.
        if (ctx.id() == 0) {
            ctx.poke_f64(buf, 2.71828);
            ctx.put(2, buf, buf, 8, no_flag, no_flag, /*ack=*/true);
            ctx.wait_all_acks();
            std::printf("[cell 0] acknowledged PUT complete "
                        "(t = %.2f us)\n",
                        ticks_to_us(ctx.now()));
        }
        ctx.barrier();

        // --- 4. global reduction over communication registers -------
        double sum = ctx.allreduce(static_cast<double>(ctx.id()),
                                   ReduceOp::sum);
        if (ctx.id() == 0)
            std::printf("[cell 0] allreduce(sum of ids 0..15) = %.0f "
                        "(expect 120)\n",
                        sum);

        // --- 5. vector reduction through the ring buffers -----------
        Addr vec = ctx.alloc(4 * 8);
        for (int i = 0; i < 4; ++i)
            ctx.poke_f64(vec + static_cast<Addr>(i) * 8,
                         ctx.id() * 1.0);
        ctx.allreduce_vector(vec, 4, ReduceOp::max);
        if (ctx.id() == 3)
            std::printf("[cell 3] vector max element 0 = %.0f "
                        "(expect 15)\n",
                        ctx.peek_f64(vec));
        ctx.barrier();
    });

    std::printf("\nfinished at %.2f simulated us; machine moved "
                "%llu T-net messages\n",
                result.finish_us(),
                static_cast<unsigned long long>(
                    machine.tnet().stats().messages));
    return result.deadlock ? 1 : 0;
}
